"""``repro dash``: a self-contained HTML flight recorder for a service run.

Renders one telemetry document (:func:`repro.obs.report.build_telemetry_doc`)
as a single HTML file with zero external assets — openable from a CI
artifact listing:

* stat tiles (jobs by disposition, retries/hedges/sheds/quarantines,
  plan-cache hit rate);
* the machine-lane **timeline**: every executed attempt as a thin slice on
  its machine's lane(s) in simulated time, colored by attempt kind
  (primary/retry/hedge), failed attempts in the status color;
* the **queue-depth** step line with a nearest-point hover readout;
* per-SLO-class deadline hit rates and latency percentile tables;
* the breaker / hedge **chronology**;
* a full attempts table (the screen-reader / grayscale twin of the
  timeline — every value the charts show is also in a table).

Colors follow the repo-wide dataviz conventions: three categorical slots
for attempt identity (validated for CVD separation in both light and dark
modes), status colors only for failure/breaker state, text always in ink
tokens.  The output is a pure function of the document — byte-stable
across reruns.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any

#: categorical slots (identity: attempt kind), light / dark
KIND_COLORS = {
    "primary": ("#2a78d6", "#3987e5"),
    "retry": ("#eb6834", "#d95926"),
    "hedge": ("#1baf7a", "#199e70"),
}
#: status colors (state, never identity)
STATUS_CRITICAL = ("#d03b3b", "#d03b3b")
STATUS_GOOD = ("#0ca30c", "#0ca30c")

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink);
}
.viz-root {
  --page: #f9f9f7; --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
  --muted: #898781; --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --k-primary: #2a78d6; --k-retry: #eb6834; --k-hedge: #1baf7a;
  --critical: #d03b3b; --good: #0ca30c;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --page: #0d0d0d; --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --k-primary: #3987e5; --k-retry: #d95926; --k-hedge: #199e70;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; color: var(--ink); }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 120px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
.tile .note { color: var(--muted); font-size: 11px; margin-top: 2px; }
.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; overflow-x: auto;
}
.legend { display: flex; gap: 16px; margin: 8px 0 4px; font-size: 12px;
  color: var(--ink-2); flex-wrap: wrap; }
.legend .key { display: inline-flex; align-items: center; gap: 6px; }
.swatch { width: 10px; height: 10px; border-radius: 2px; display: inline-block; }
table { border-collapse: collapse; font-size: 13px; }
th {
  text-align: left; color: var(--ink-2); font-weight: 600;
  border-bottom: 1px solid var(--axis); padding: 4px 14px 4px 0;
}
td {
  padding: 4px 14px 4px 0; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
td.t { font-variant-numeric: normal; }
.state { display: inline-flex; align-items: center; gap: 5px; }
details summary { cursor: pointer; color: var(--ink-2); margin: 8px 0; }
svg text { font: 11px system-ui, sans-serif; fill: var(--muted); }
.tooltip {
  position: absolute; pointer-events: none; display: none;
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 6px; padding: 6px 9px; font-size: 12px; color: var(--ink);
  box-shadow: 0 2px 8px rgba(0,0,0,0.15); white-space: nowrap;
}
footer { color: var(--muted); font-size: 12px; margin-top: 28px; }
"""

_QUEUE_JS = """
(function () {
  var svg = document.getElementById('queue-svg');
  if (!svg) return;
  var data = JSON.parse(document.getElementById('queue-data').textContent);
  var tip = document.getElementById('queue-tip');
  var hair = document.getElementById('queue-hair');
  var dot = document.getElementById('queue-dot');
  var geom = JSON.parse(svg.dataset.geom);
  function sx(t) { return geom.x0 + (t - geom.t0) / geom.dt * geom.w; }
  function sy(v) { return geom.y1 - v / geom.vmax * geom.h; }
  svg.addEventListener('mousemove', function (evt) {
    var r = svg.getBoundingClientRect();
    var t = geom.t0 + (evt.clientX - r.left - geom.x0) / geom.w * geom.dt;
    var best = data[0];
    for (var i = 0; i < data.length; i++) {
      if (data[i][0] <= t) best = data[i]; else break;
    }
    hair.setAttribute('x1', sx(Math.max(geom.t0, Math.min(t, geom.t0 + geom.dt))));
    hair.setAttribute('x2', hair.getAttribute('x1'));
    hair.style.display = 'block';
    dot.setAttribute('cx', sx(best[0])); dot.setAttribute('cy', sy(best[1]));
    dot.style.display = 'block';
    tip.style.display = 'block';
    tip.style.left = (evt.pageX + 14) + 'px';
    tip.style.top = (evt.pageY - 10) + 'px';
    tip.textContent = 'depth ' + best[1] + ' at t=' + best[0].toExponential(3);
  });
  svg.addEventListener('mouseleave', function () {
    tip.style.display = 'none'; hair.style.display = 'none';
    dot.style.display = 'none';
  });
})();
"""


def _fmt(x: float) -> str:
    """Compact figure for tiles (1,284 / 12.9K / 4.2M)."""
    x = float(x)
    for cut, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if abs(x) >= cut:
            return f"{x / cut:.1f}{suffix}"
    if x == int(x):
        return f"{int(x):,}"
    return f"{x:,.2f}"


def _fmt_t(x: float) -> str:
    """Simulated time, compact scientific."""
    return f"{float(x):.3g}"


def _tile(label: str, value: str, note: str = "") -> str:
    note_html = f'<div class="note">{html.escape(note)}</div>' if note else ""
    return (
        f'<div class="tile"><div class="label">{html.escape(label)}</div>'
        f'<div class="value">{html.escape(value)}</div>{note_html}</div>'
    )


def _assign_lanes(spans: list[dict]) -> dict[int, int]:
    from repro.obs.perfetto import _assign_lanes as assign

    return assign(spans)


def _timeline_svg(timeline: dict[str, Any]) -> str:
    """Machine-lane timeline: one thin slice per attempt, simulated time."""
    spans = timeline.get("attempts", [])
    if not spans:
        return '<p class="sub">no attempts recorded</p>'
    lanes = _assign_lanes(spans)
    # global lane order: (machine, lane) sorted
    keys = sorted({(s["machine"], lanes[i]) for i, s in enumerate(spans)})
    row_of = {k: j for j, k in enumerate(keys)}
    t0 = min(s["start"] for s in spans)
    t1 = max(s["finish"] for s in spans)
    dt = (t1 - t0) or 1.0
    left, width, row_h, bar_h = 90, 880, 18, 12
    height = len(keys) * row_h + 30
    parts = [
        f'<svg viewBox="0 0 {left + width + 20} {height}" '
        f'width="100%" role="img" aria-label="attempt timeline">'
    ]
    # lane labels + hairline separators
    for (machine, lane), j in row_of.items():
        y = j * row_h
        label = f"machine {machine}" + (f" · {lane}" if lane else "")
        parts.append(
            f'<text x="{left - 8}" y="{y + row_h - 6}" '
            f'text-anchor="end">{html.escape(label)}</text>'
        )
        parts.append(
            f'<line x1="{left}" y1="{y + row_h - 0.5}" '
            f'x2="{left + width}" y2="{y + row_h - 0.5}" '
            f'stroke="var(--grid)" stroke-width="1"/>'
        )
    # attempt slices (2px gap is the lane padding; tooltip = native title)
    for i, s in enumerate(spans):
        j = row_of[(s["machine"], lanes[i])]
        x = left + (s["start"] - t0) / dt * width
        w = max(1.5, (s["finish"] - s["start"]) / dt * width)
        y = j * row_h + (row_h - bar_h) / 2 - 1
        if s["ok"]:
            color = f'var(--k-{s["kind"]})' if s["kind"] in KIND_COLORS else "var(--k-primary)"
        else:
            color = "var(--critical)"
        tip = (
            f'job {s["job"]} attempt {s["attempt"]} [{s["kind"]}'
            + (", probe" if s.get("probe") else "")
            + f'] p={s["p"]} rung={s["rung"]} '
            + ("ok" if s["ok"] else "FAILED")
            + f' t={_fmt_t(s["start"])}..{_fmt_t(s["finish"])}'
        )
        parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{bar_h}" '
            f'rx="2" fill="{color}"><title>{html.escape(tip)}</title></rect>'
        )
    # time axis
    y_ax = len(keys) * row_h + 8
    parts.append(
        f'<line x1="{left}" y1="{y_ax}" x2="{left + width}" y2="{y_ax}" '
        f'stroke="var(--axis)" stroke-width="1"/>'
    )
    for k in range(5):
        t = t0 + dt * k / 4
        x = left + width * k / 4
        anchor = "start" if k == 0 else ("end" if k == 4 else "middle")
        parts.append(
            f'<text x="{x:.1f}" y="{y_ax + 14}" '
            f'text-anchor="{anchor}">{_fmt_t(t)}</text>'
        )
    parts.append("</svg>")
    legend = (
        '<div class="legend">'
        + "".join(
            f'<span class="key"><span class="swatch" '
            f'style="background:var(--k-{k})"></span>{k}</span>'
            for k in KIND_COLORS
        )
        + '<span class="key"><span class="swatch" '
        'style="background:var(--critical)"></span>✕ failed attempt</span>'
        "</div>"
    )
    return legend + "".join(parts)


def _queue_svg(samples: list[list[float]]) -> str:
    """Queue-depth step line (single series — the title names it)."""
    if not samples:
        return '<p class="sub">no queue-depth samples</p>'
    t0, t1 = samples[0][0], samples[-1][0]
    dt = (t1 - t0) or 1.0
    vmax = max(v for _, v in samples) or 1.0
    left, width, height, top = 50, 900, 120, 10
    y1 = top + height

    def sx(t: float) -> float:
        return left + (t - t0) / dt * width

    def sy(v: float) -> float:
        return y1 - v / vmax * height

    pts: list[str] = []
    prev_v = samples[0][1]
    pts.append(f"{sx(samples[0][0]):.2f},{sy(prev_v):.2f}")
    for t, v in samples[1:]:
        pts.append(f"{sx(t):.2f},{sy(prev_v):.2f}")  # step: hold then jump
        pts.append(f"{sx(t):.2f},{sy(v):.2f}")
        prev_v = v
    pts.append(f"{sx(t1):.2f},{sy(prev_v):.2f}")
    geom = json.dumps(
        {"x0": left, "w": width, "t0": t0, "dt": dt, "vmax": vmax,
         "h": height, "y1": y1},
        sort_keys=True,
    )
    grid = []
    for k in range(3):
        v = vmax * (k + 1) / 3
        grid.append(
            f'<line x1="{left}" y1="{sy(v):.1f}" x2="{left + width}" '
            f'y2="{sy(v):.1f}" stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{left - 6}" y="{sy(v) + 4:.1f}" '
            f'text-anchor="end">{v:.0f}</text>'
        )
    axis_ticks = []
    for k in range(5):
        t = t0 + dt * k / 4
        anchor = "start" if k == 0 else ("end" if k == 4 else "middle")
        axis_ticks.append(
            f'<text x="{sx(t):.1f}" y="{y1 + 16}" '
            f'text-anchor="{anchor}">{_fmt_t(t)}</text>'
        )
    return (
        f'<script type="application/json" id="queue-data">'
        f"{json.dumps(samples)}</script>"
        f'<svg id="queue-svg" data-geom=\'{geom}\' '
        f'viewBox="0 0 {left + width + 20} {y1 + 24}" width="100%" '
        f'role="img" aria-label="queue depth over simulated time">'
        + "".join(grid)
        + f'<line x1="{left}" y1="{y1}" x2="{left + width}" y2="{y1}" '
        f'stroke="var(--axis)" stroke-width="1"/>'
        + "".join(axis_ticks)
        + f'<polyline points="{" ".join(pts)}" fill="none" '
        f'stroke="var(--k-primary)" stroke-width="2" '
        f'stroke-linejoin="round" stroke-linecap="round"/>'
        f'<line id="queue-hair" x1="0" y1="{top}" x2="0" y2="{y1}" '
        f'stroke="var(--axis)" stroke-width="1" style="display:none"/>'
        f'<circle id="queue-dot" r="4" fill="var(--k-primary)" '
        f'stroke="var(--surface)" stroke-width="2" style="display:none"/>'
        "</svg>"
        '<div class="tooltip" id="queue-tip"></div>'
    )


def _slo_table(doc: dict[str, Any]) -> str:
    slo = doc.get("slo", {})
    sketches = doc.get("latency_sketches", {})
    if not slo and not sketches:
        return '<p class="sub">no SLO data</p>'
    rows = []
    for cls in sorted(set(slo) | set(sketches)):
        s = slo.get(cls, {})
        sk = sketches.get(cls, {})
        q = sk.get("quantiles", {})
        rows.append(
            f'<tr><td class="t">{html.escape(cls)}</td>'
            f'<td>{s.get("jobs", sk.get("count", 0))}</td>'
            f'<td>{s.get("hit_rate", 0.0):.1%}</td>'
            f'<td>{_fmt_t(q.get("p50", 0.0))}</td>'
            f'<td>{_fmt_t(q.get("p95", 0.0))}</td>'
            f'<td>{_fmt_t(q.get("p99", 0.0))}</td>'
            f'<td>{_fmt_t(sk.get("max", 0.0))}</td></tr>'
        )
    return (
        "<table><thead><tr><th>SLO class</th><th>jobs</th>"
        "<th>deadline hit rate</th><th>latency p50</th><th>p95</th>"
        "<th>p99</th><th>max</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


def _chronology(doc: dict[str, Any]) -> str:
    rows = []
    for e in doc.get("breaker_chronology", []):
        state = e.get("state", "?")
        if state == "open":
            mark = '<span class="state" style="color:var(--critical)">✕ open</span>'
        elif state == "closed":
            mark = '<span class="state" style="color:var(--good)">● closed</span>'
        else:
            mark = f'<span class="state">◐ {html.escape(str(state))}</span>'
        rows.append(
            (e["t"], e["seq"],
             f'<tr><td>{_fmt_t(e["t"])}</td><td class="t">breaker</td>'
             f'<td class="t">machine {e.get("machine")}</td>'
             f'<td class="t">{html.escape(str(e.get("prev")))} → {mark}</td></tr>')
        )
    for e in doc.get("hedge_chronology", []):
        what = "hedge scheduled" if e["ev"] == "hedge_scheduled" else "hedge launched"
        detail = f'job {e.get("job")}'
        if "fire_at" in e:
            detail += f' (fires at {_fmt_t(e["fire_at"])})'
        rows.append(
            (e["t"], e["seq"],
             f'<tr><td>{_fmt_t(e["t"])}</td><td class="t">hedge</td>'
             f'<td class="t">{detail}</td>'
             f'<td class="t">{html.escape(what)}</td></tr>')
        )
    if not rows:
        return '<p class="sub">no breaker transitions or hedges this run</p>'
    rows.sort(key=lambda r: (r[0], r[1]))
    return (
        "<table><thead><tr><th>t (sim)</th><th>kind</th><th>subject</th>"
        "<th>event</th></tr></thead><tbody>"
        + "".join(r[2] for r in rows)
        + "</tbody></table>"
    )


def _attempts_table(timeline: dict[str, Any]) -> str:
    spans = timeline.get("attempts", [])
    if not spans:
        return ""
    rows = [
        f'<tr><td>{s["job"]}</td><td>{s["attempt"]}</td>'
        f'<td class="t">{html.escape(s["kind"])}</td>'
        f'<td class="t">{html.escape(s["rung"])}</td><td>{s["p"]}</td>'
        f'<td>{s["machine"]}</td><td class="t">{"yes" if s.get("probe") else ""}</td>'
        f'<td class="t">{"ok" if s["ok"] else "failed"}</td>'
        f'<td>{_fmt_t(s["start"])}</td><td>{_fmt_t(s["finish"])}</td></tr>'
        for s in spans
    ]
    return (
        "<details><summary>attempts table "
        f"({len(spans)} rows — the accessible twin of the timeline)</summary>"
        "<table><thead><tr><th>job</th><th>attempt</th><th>kind</th>"
        "<th>rung</th><th>p</th><th>machine</th><th>probe</th><th>result</th>"
        "<th>start</th><th>finish</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table></details>"
    )


def build_dash_html(
    doc: dict[str, Any], title: str = "repro service flight recorder"
) -> str:
    """Render one telemetry document as a self-contained HTML report."""
    counters = doc.get("counters", {})
    events = doc.get("events", {})
    cfg = doc.get("config", {})
    solver = doc.get("solver", {})
    timeline = doc.get("timeline", {})

    jobs_ok = counters.get("jobs_ok", 0) + counters.get("jobs_degraded", 0)
    jobs_total = sum(
        counters.get(f"jobs_{d}", 0) for d in ("ok", "degraded", "shed", "error")
    )
    plans = counters.get("plans", 0)
    hits = counters.get("plan_cache_hits", 0)
    tiles = [
        _tile("Jobs served", _fmt(jobs_total),
              f"{_fmt(jobs_ok)} ok · {_fmt(counters.get('jobs_error', 0))} error"
              f" · {_fmt(counters.get('jobs_shed', 0))} shed"),
        _tile("Attempts", _fmt(counters.get("dispatches", 0)),
              f"{_fmt(counters.get('probes', 0))} probes"),
        _tile("Retries", _fmt(counters.get("retries", 0))),
        _tile("Hedges", _fmt(counters.get("hedges", 0))),
        _tile("Quarantines", _fmt(counters.get("quarantines", 0))),
        _tile("Plan cache", f"{(hits / plans if plans else 0.0):.0%}",
              f"{_fmt(hits)}/{_fmt(plans)} hits"),
        _tile("Solver spans", _fmt(solver.get("span_events", 0)),
              f"{_fmt(solver.get('attempts_with_spans', 0))} attempts traced"),
    ]
    cfg_line = " · ".join(f"{k}={v}" for k, v in sorted(cfg.items())) or "—"

    body = f"""
<div class="viz-root">
<h1>{html.escape(title)}</h1>
<p class="sub">{events.get("count", 0)} lifecycle events · simulated time
(1 unit = 1 model time unit, T = γF + βW + νQ + αS) ·
config: {html.escape(cfg_line)}</p>
<div class="tiles">{"".join(tiles)}</div>
<h2>Attempt timeline by machine lane</h2>
<div class="card">{_timeline_svg(timeline)}{_attempts_table(timeline)}</div>
<h2>Queue depth (simulated time)</h2>
<div class="card">{_queue_svg(timeline.get("queue_depth", []))}</div>
<h2>SLO deadline hit rates and latency percentiles</h2>
<div class="card">{_slo_table(doc)}</div>
<h2>Breaker and hedge chronology</h2>
<div class="card">{_chronology(doc)}</div>
<footer>generated by <code>repro dash</code> from telemetry.json ·
all times simulated and deterministic — two runs of the same seeded
workload produce this exact report</footer>
</div>
<script>{_QUEUE_JS}</script>
"""
    return (
        "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title>"
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        f"<style>{_CSS}</style></head><body>{body}</body></html>"
    )


def write_dash(
    doc: dict[str, Any],
    path: Path | str,
    title: str = "repro service flight recorder",
) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(build_dash_html(doc, title=title))
    return out
