"""Merged Perfetto trace: service tracks + per-job solver tracks.

One Chrome ``trace_event`` document (loadable at https://ui.perfetto.dev)
showing a whole service run on the simulated clock:

* **pid 0 — the service process.**  One *scheduler* thread carrying
  instant events for submits/sheds/terminals plus ``queue_depth`` and
  per-machine breaker/busy counter tracks, and one thread per
  ``(machine, lane)``: every executed attempt (:class:`Trial` as seen by
  the ``dispatch`` events) renders as a complete ("X") slice.  A machine
  hosting several concurrent attempts gets one lane per overlap (greedy
  lowest-free-lane assignment — deterministic), because sync slices on
  one Chrome track must nest.
* **pid 1000+ — one process per solved attempt** whose solver spans were
  captured: the per-solve :class:`~repro.bsp.machine.BSPMachine`'s span
  tree, shifted by the attempt's dispatch time.  Solve model time *is*
  service time (both are γF + βW + νQ + αS of the same counters), so the
  shifted solver timeline tiles the service slice exactly.
* **flow events** (``ph: "s"`` → ``ph: "f"``) connect each service
  attempt slice to the root of its solver track — click an attempt in
  the service swimlane and Perfetto draws the arrow into the solve.

Everything is derived from a :class:`~repro.obs.telemetry.Telemetry`
object; the export is a pure function of it (byte-stable across reruns).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.trace.chrome import span_event_args
from repro.trace.spans import span_event_from_dict

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry
    from repro.serve.pool import MachinePool

#: pid of the service process (machines + scheduler live here)
SERVICE_PID = 0
#: tid of the scheduler/counters thread inside the service process
SCHEDULER_TID = 0
#: solver processes start here: pid = SOLVER_PID_BASE + job * SOLVER_PID_STRIDE + attempt
SOLVER_PID_BASE = 1000
SOLVER_PID_STRIDE = 64
#: machine lane threads start here: tid = MACHINE_TID_BASE + machine * MACHINE_TID_STRIDE + lane
MACHINE_TID_BASE = 10
MACHINE_TID_STRIDE = 100


def _assign_lanes(spans: list[dict]) -> dict[int, int]:
    """Greedy per-machine lane assignment for overlapping attempt slices.

    Returns ``{span_index: lane}``.  Scanning in (start, finish, index)
    order and picking the lowest lane that is free at the span's start is
    deterministic and uses the minimum number of lanes at every instant.
    """
    lanes: dict[int, int] = {}
    by_machine: dict[int, list[int]] = {}
    for i, s in enumerate(spans):
        by_machine.setdefault(s["machine"], []).append(i)
    for indices in by_machine.values():
        indices.sort(key=lambda i: (spans[i]["start"], spans[i]["finish"], i))
        lane_free_at: list[float] = []  # lane -> earliest free time
        for i in indices:
            s = spans[i]
            lane = next(
                (k for k, free in enumerate(lane_free_at) if free <= s["start"]),
                None,
            )
            if lane is None:
                lane = len(lane_free_at)
                lane_free_at.append(s["finish"])
            else:
                lane_free_at[lane] = s["finish"]
            lanes[i] = lane
    return lanes


def solver_pid(job: int, attempt: int) -> int:
    return SOLVER_PID_BASE + int(job) * SOLVER_PID_STRIDE + int(attempt)


def merged_trace(
    telemetry: "Telemetry",
    pool: "MachinePool | None" = None,
    label: str = "repro service telemetry",
) -> dict[str, Any]:
    """Build the merged trace_event document from a telemetry capture."""
    events: list[dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": SERVICE_PID, "tid": 0,
         "args": {"name": label}},
        {"ph": "M", "name": "thread_name", "pid": SERVICE_PID,
         "tid": SCHEDULER_TID,
         "args": {"name": "scheduler (1 us = 1 model time unit)"}},
        {"ph": "M", "name": "thread_sort_index", "pid": SERVICE_PID,
         "tid": SCHEDULER_TID, "args": {"sort_index": 0}},
    ]

    # --- scheduler track: lifecycle instants -------------------------- #
    for e in telemetry.events:
        if e["ev"] in ("submit", "shed", "terminal"):
            args = {k: v for k, v in e.items() if k not in ("ev", "t", "seq")}
            events.append(
                {
                    "name": e["ev"], "cat": "service", "ph": "i", "s": "t",
                    "pid": SERVICE_PID, "tid": SCHEDULER_TID,
                    "ts": e["t"], "args": args,
                }
            )

    # --- counter tracks from the gauge series ------------------------- #
    for name in sorted(telemetry.series.gauges):
        g = telemetry.series.gauges[name]
        for t, v in g.samples:
            events.append(
                {
                    "ph": "C", "name": name, "pid": SERVICE_PID,
                    "tid": SCHEDULER_TID, "ts": t, "args": {"value": v},
                }
            )

    # --- machine lanes: one slice per executed attempt ---------------- #
    spans = telemetry.attempt_spans()
    lanes = _assign_lanes(spans)
    seen_threads: set[int] = set()
    for i, s in enumerate(spans):
        machine, lane = s["machine"], lanes[i]
        tid = MACHINE_TID_BASE + machine * MACHINE_TID_STRIDE + lane
        if tid not in seen_threads:
            seen_threads.add(tid)
            if pool is not None:
                base = pool.track_label(machine)
            else:
                base = f"machine {machine}"
            suffix = f" lane {lane}" if lane else ""
            events.append(
                {"ph": "M", "name": "thread_name", "pid": SERVICE_PID,
                 "tid": tid, "args": {"name": base + suffix}}
            )
            events.append(
                {"ph": "M", "name": "thread_sort_index", "pid": SERVICE_PID,
                 "tid": tid, "args": {"sort_index": tid}}
            )
        events.append(
            {
                "name": f"job {s['job']} a{s['attempt']} [{s['kind']}]",
                "cat": "attempt", "ph": "X", "pid": SERVICE_PID, "tid": tid,
                "ts": s["start"], "dur": s["finish"] - s["start"],
                "args": {
                    "job": s["job"], "attempt": s["attempt"],
                    "kind": s["kind"], "rung": s["rung"], "p": s["p"],
                    "probe": s["probe"], "ok": s["ok"],
                },
            }
        )

    # --- per-attempt solver processes + flow linkage ------------------ #
    for i, s in enumerate(spans):
        key = f"{s['job']}:{s['attempt']}"
        captured = telemetry.solver.get(key)
        if captured is None or not captured["events"]:
            continue
        pid = solver_pid(s["job"], s["attempt"])
        machine, lane = s["machine"], lanes[i]
        tid = MACHINE_TID_BASE + machine * MACHINE_TID_STRIDE + lane
        flow_id = pid  # unique per (job, attempt) by construction
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": f"job {s['job']} attempt {s['attempt']} "
                              f"solve (p={captured['p']})"}}
        )
        events.append(
            {"ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
             "args": {"sort_index": pid}}
        )
        # flow start on the service attempt slice...
        events.append(
            {"ph": "s", "id": flow_id, "cat": "flow", "name": "solve",
             "pid": SERVICE_PID, "tid": tid, "ts": s["start"]}
        )
        first = True
        for doc in captured["events"]:
            ev = span_event_from_dict(doc)
            events.append(
                {
                    "name": ev.name, "cat": "bsp", "ph": "X", "pid": pid,
                    "tid": 0, "ts": s["start"] + ev.ts, "dur": ev.dur,
                    "args": span_event_args(ev),
                }
            )
            if first:
                # ...flow finish binds to the first solver slice
                events.append(
                    {"ph": "f", "bp": "e", "id": flow_id, "cat": "flow",
                     "name": "solve", "pid": pid, "tid": 0,
                     "ts": s["start"] + ev.ts}
                )
                first = False

    flows = sum(1 for e in events if e.get("ph") == "s")
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "attempts": len(spans),
            "solver_tracks": flows,
            "lifecycle_events": len(telemetry.events),
            "time_unit": "simulated service time "
                         "(gamma*F + beta*W + nu*Q + alpha*S)",
        },
    }


def write_merged_trace(
    telemetry: "Telemetry",
    path: Path | str,
    pool: "MachinePool | None" = None,
    label: str = "repro service telemetry",
) -> Path:
    """Write the merged trace JSON to ``path`` (parents created)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(merged_trace(telemetry, pool=pool, label=label), indent=1) + "\n"
    )
    return out
