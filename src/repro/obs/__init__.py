"""Unified service telemetry (see docs/observability.md, "Service telemetry").

``repro.obs`` observes the serving layer the way ``repro.trace`` /
``repro.metrics`` observe a single solve: job-lifecycle events and
time-series in **simulated time**, solver spans nested under their owning
service attempt, a merged Perfetto export, the gated ``telemetry.json``
document, and the ``repro dash`` flight-recorder report.  Disabled, it is
the inert :data:`NO_TELEMETRY` singleton — a strict no-op.
"""

from repro.metrics.sketch import LatencySketch
from repro.obs.dash import build_dash_html, write_dash
from repro.obs.perfetto import merged_trace, write_merged_trace
from repro.obs.report import (
    DEFAULT_TELEMETRY_PATH,
    build_telemetry_doc,
    check_telemetry,
    load_telemetry,
    render_telemetry,
    write_telemetry,
)
from repro.obs.series import Gauge, SeriesRegistry
from repro.obs.telemetry import (
    BREAKER_STATE_CODES,
    NO_TELEMETRY,
    NoTelemetry,
    Telemetry,
    read_event_log,
)

__all__ = [
    "BREAKER_STATE_CODES",
    "DEFAULT_TELEMETRY_PATH",
    "Gauge",
    "LatencySketch",
    "NO_TELEMETRY",
    "NoTelemetry",
    "SeriesRegistry",
    "Telemetry",
    "build_dash_html",
    "build_telemetry_doc",
    "check_telemetry",
    "load_telemetry",
    "merged_trace",
    "read_event_log",
    "render_telemetry",
    "write_dash",
    "write_merged_trace",
    "write_telemetry",
]
