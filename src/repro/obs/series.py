"""Simulated-time time-series registry: counters and change-only gauges.

All timestamps are **simulated** service time (the same clock
:func:`repro.serve.resilience.run_resilient` advances), so two runs of the
same seeded workload produce bit-identical series — there is no wall clock
anywhere in this module.  Values are native python floats/ints so the JSON
export round-trips exactly.
"""

from __future__ import annotations

import hashlib
import json


class Gauge:
    """A piecewise-constant simulated-time series.

    Samples are recorded **on change only** (plus the first sample), so a
    gauge sampled at every event-loop step stays proportional to the number
    of actual transitions, not loop iterations.  Re-sampling an unchanged
    value at a later time is a no-op; the series is interpreted as
    right-continuous step functions.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        #: list of (t, value) change points, t non-decreasing
        self.samples: list[tuple[float, float]] = []

    def sample(self, t: float, value: float) -> None:
        if self.samples and self.samples[-1][1] == value:
            return
        self.samples.append((float(t), float(value)))

    @property
    def last(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0

    @property
    def max(self) -> float:
        return max((v for _, v in self.samples), default=0.0)

    def digest(self) -> str:
        """Short stable digest of the full change-point series (lets the
        gated baseline assert bit-identity without embedding every point)."""
        payload = json.dumps(self.samples, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


class SeriesRegistry:
    """Named counters and gauges, deterministic across reruns."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, Gauge] = {}

    def counter_inc(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, t: float, value: float) -> None:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        g.sample(t, value)

    def as_dict(self, full_series: bool = False) -> dict:
        """JSON document, keys sorted (insertion order is an execution
        detail).  With ``full_series`` each gauge embeds its change points;
        otherwise only count/last/max plus the series digest (the compact
        form gated in ``telemetry.json``)."""
        gauges: dict[str, dict] = {}
        for name in sorted(self.gauges):
            g = self.gauges[name]
            doc: dict = {
                "points": len(g.samples),
                "last": g.last,
                "max": g.max,
                "digest": g.digest(),
            }
            if full_series:
                doc["samples"] = [[t, v] for t, v in g.samples]
            gauges[name] = doc
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": gauges,
        }
