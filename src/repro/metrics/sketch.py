"""Deterministic log-bucket latency sketches.

A :class:`LatencySketch` is a DDSketch-style histogram over exponentially
spaced buckets with a fixed relative accuracy: every recorded value ``v``
falls in bucket ``k = ceil(log_gamma(v))`` where ``gamma = (1+a)/(1-a)``,
so any rank-based quantile read back from the sketch is within relative
error ``a`` of the exact order statistic.

Unlike sampling sketches there is no randomness anywhere: observing the
same multiset of values (in any order) produces the identical bucket map,
so the per-SLO-class latency sketches in ``telemetry.json`` are bit-stable
across reruns and safe to gate with exact equality.  All state is native
python ints/floats — ``json.dumps`` round-trips it exactly.
"""

from __future__ import annotations

import math

#: default relative accuracy (1%): p99 reads back within 1% of exact
DEFAULT_REL_ACCURACY = 0.01


class LatencySketch:
    """Mergeable log-bucket histogram with deterministic quantiles."""

    def __init__(self, rel_accuracy: float = DEFAULT_REL_ACCURACY):
        if not 0.0 < rel_accuracy < 1.0:
            raise ValueError(f"rel_accuracy must be in (0, 1), got {rel_accuracy}")
        self.rel_accuracy = float(rel_accuracy)
        self.gamma = (1.0 + self.rel_accuracy) / (1.0 - self.rel_accuracy)
        self._log_gamma = math.log(self.gamma)
        #: bucket index -> count, for strictly positive values
        self.buckets: dict[int, int] = {}
        #: values <= 0 (latencies can be exactly 0 for instant jobs)
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        return int(math.ceil(math.log(value) / self._log_gamma - 1e-12))

    def observe(self, value: float) -> None:
        """Record one value (order-independent, deterministic)."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if value <= 0.0:
            self.zero_count += 1
            return
        k = self._index(value)
        self.buckets[k] = self.buckets.get(k, 0) + 1

    def quantile(self, q: float) -> float:
        """Rank-``q`` value (bucket upper bound: within ``rel_accuracy``
        of the exact order statistic).  Returns 0.0 on an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # nearest-rank (1-based) over zero bucket then ascending log buckets
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero_count:
            return 0.0
        seen = self.zero_count
        for k in sorted(self.buckets):
            seen += self.buckets[k]
            if seen >= rank:
                return self.gamma**k
        return self.max  # unreachable unless float dust; cap at observed max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencySketch") -> None:
        """Fold ``other``'s observations into this sketch (same accuracy)."""
        if other.gamma != self.gamma:
            raise ValueError("cannot merge sketches with different accuracies")
        for k, c in other.buckets.items():
            self.buckets[k] = self.buckets.get(k, 0) + c
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_dict(self) -> dict:
        """JSON document: bucket map keyed by stringified index (sorted),
        plus summary stats and canonical quantiles."""
        return {
            "rel_accuracy": self.rel_accuracy,
            "count": self.count,
            "zero_count": self.zero_count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "quantiles": {
                "p50": self.quantile(0.50),
                "p90": self.quantile(0.90),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
            },
            "buckets": {str(k): self.buckets[k] for k in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "LatencySketch":
        sk = cls(rel_accuracy=float(doc["rel_accuracy"]))
        sk.count = int(doc["count"])
        sk.zero_count = int(doc["zero_count"])
        sk.total = float(doc["total"])
        if sk.count:
            sk.min = float(doc["min"])
            sk.max = float(doc["max"])
        sk.buckets = {int(k): int(c) for k, c in doc["buckets"].items()}
        return sk

    def __repr__(self) -> str:
        return (
            f"LatencySketch(count={self.count}, buckets={len(self.buckets)}, "
            f"rel_accuracy={self.rel_accuracy})"
        )
