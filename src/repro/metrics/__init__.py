"""Per-rank telemetry: communication heatmaps, memory watermarks,
imbalance metrics and bound-attainment ratios.

See docs/observability.md ("Per-rank metrics").  Enable on any machine with
``BSPMachine(p, metrics=True)`` (or ``REPRO_METRICS=1``), read the result
with ``machine.cost().metrics()``, and export with ``repro metrics``.
"""

from repro.bsp.machine import NO_METRICS
from repro.metrics.attainment import (
    ATTAINMENT_COMPONENTS,
    attainment_ratios,
    finish_cost,
    stage_model_cost,
)
from repro.metrics.collector import MetricsCollector, MetricsSnapshot
from repro.metrics.report import (
    DEFAULT_ENVELOPE,
    SCHEMA_VERSION,
    build_metrics_doc,
    check_metrics,
    load_metrics,
    render_metrics,
    write_metrics,
)
from repro.metrics.sketch import LatencySketch

__all__ = [
    "ATTAINMENT_COMPONENTS",
    "DEFAULT_ENVELOPE",
    "LatencySketch",
    "MetricsCollector",
    "MetricsSnapshot",
    "NO_METRICS",
    "SCHEMA_VERSION",
    "attainment_ratios",
    "build_metrics_doc",
    "check_metrics",
    "finish_cost",
    "load_metrics",
    "render_metrics",
    "stage_model_cost",
    "write_metrics",
]
