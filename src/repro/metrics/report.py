"""The ``metrics.json`` document: build, render, persist, and gate.

:func:`build_metrics_doc` folds one instrumented eigensolver run into a
stable machine-readable document (schema :data:`SCHEMA_VERSION`) with five
sections:

* ``config`` — the run parameters (n, p, delta, engine, ...);
* ``comm`` — the rank-to-rank words/messages matrices, their totals, the
  heaviest directed pairs and the unpaired residuals;
* ``memory`` — per-rank superstep watermarks, counter peaks, and the
  Theorem IV.4 model bound with its utilization;
* ``imbalance`` — max/mean and Gini per cost component over the run;
* ``attainment`` — measured ÷ predicted cost per eigensolver stage (see
  :mod:`repro.metrics.attainment`);
* ``conservation`` — the collector's invariant verdict.

:func:`check_metrics` is the deterministic CI gate over a pinned baseline
document: conservation must hold, no memory watermark may exceed the model
bound, the simulated comm totals must match exactly, and no attainment
ratio may drift above its baseline by more than the envelope.  It has the
same ``(fresh, baseline, tolerance)`` shape as
:func:`repro.bench.check_against_baseline`, so ``repro metrics --check``
reuses :func:`repro.bench.check_with_retries` (no failure here mentions
wall clocks, so the retry loop never fires).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.metrics.attainment import ATTAINMENT_COMPONENTS, attainment_ratios
from repro.model.bounds import memory_bound_words

if TYPE_CHECKING:
    from repro.eig.driver import EigensolveResult

#: bump when the document layout changes incompatibly
SCHEMA_VERSION = "repro.metrics/1"

#: cost components reported in the imbalance section
IMBALANCE_REPORT_FIELDS: tuple[str, ...] = (
    "flops",
    "words",
    "mem_traffic",
    "supersteps",
    "memory",
)

#: relative drift allowed on attainment ratios before the gate fails
DEFAULT_ENVELOPE = 0.25


def build_metrics_doc(
    result: "EigensolveResult", n: int, engine: str = "array", config: dict | None = None
) -> dict[str, Any]:
    """Fold an instrumented :class:`EigensolveResult` into the document.

    ``result.cost`` must carry a metrics snapshot (the machine ran with
    ``metrics=True``); ``config`` merges extra run parameters into the
    ``config`` section.
    """
    report = result.cost
    snap = report.metrics()
    p = snap.p
    bound = float(memory_bound_words(n, p, result.delta))
    watermark = snap.watermark_words
    peak = snap.peak_memory_words
    doc: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "config": {
            "n": int(n),
            "p": int(p),
            "delta": float(result.delta),
            "replication": int(result.replication),
            "initial_bandwidth": int(result.initial_bandwidth),
            "engine": engine,
            **(config or {}),
        },
        "comm": {
            "total_words": snap.total_words,
            "total_messages": snap.total_messages,
            "words_matrix": snap.words_matrix.tolist(),
            "messages_matrix": snap.messages_matrix.tolist(),
            "heaviest_pairs": snap.heaviest_pairs(8),
            "unpaired_sent": float(snap.unpaired_sent.sum()),
            "unpaired_recv": float(snap.unpaired_recv.sum()),
        },
        "memory": {
            "watermark_words": watermark.tolist(),
            "watermark_superstep": snap.watermark_superstep.tolist(),
            "peak_memory_words": peak.tolist(),
            "max_watermark": float(watermark.max()),
            "max_peak": float(peak.max()),
            "model_bound_words": bound,
            "bound_utilization": float(peak.max()) / bound if bound > 0 else None,
        },
        "imbalance": {
            f: {"max_over_mean": report.imbalance(f), "gini": report.gini(f)}
            for f in IMBALANCE_REPORT_FIELDS
        },
        "attainment": attainment_ratios(result.stages, result.stage_meta),
        "conservation": {"problems": list(snap.conservation_problems)},
    }
    return doc


def write_metrics(doc: dict[str, Any], path: Path | str) -> Path:
    """Write the document to ``path`` (parents created) and return it."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return out


def load_metrics(path: Path | str) -> dict[str, Any]:
    """Load a previously written document.

    Raises ``FileNotFoundError`` / ``ValueError`` with messages naming the
    expected file — the CLI routes both through its exit-2 diagnostic path
    instead of a bare traceback.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(
            f"no metrics baseline at {path}; create one with `repro metrics --out {path}`"
        )
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"metrics baseline {path} is not valid JSON ({exc}); "
            f"regenerate it with `repro metrics --out {path}`"
        ) from exc


def check_metrics(
    fresh: dict[str, Any],
    baseline: dict[str, Any],
    envelope: float = DEFAULT_ENVELOPE,
) -> list[str]:
    """Deterministic gate of a fresh document against a pinned baseline.

    Returns failure descriptions ([] = pass).  Hard invariants (checked on
    the fresh run alone): conservation holds and no rank's memory peak
    exceeds the model bound.  Baseline-relative: identical config, exactly
    matching comm totals (the simulation is deterministic), and every
    attainment ratio within ``(1 + envelope) ×`` its baseline value.
    """
    failures: list[str] = []
    if fresh.get("schema") != SCHEMA_VERSION:
        failures.append(
            f"schema mismatch: fresh document is {fresh.get('schema')!r}, "
            f"expected {SCHEMA_VERSION!r}"
        )
        return failures

    for problem in fresh["conservation"]["problems"]:
        failures.append(f"conservation violated: {problem}")
    mem = fresh["memory"]
    bound = mem["model_bound_words"]
    if mem["max_peak"] > bound:
        failures.append(
            f"memory watermark exceeds the model bound: max peak "
            f"{mem['max_peak']:.6g} words > bound {bound:.6g} words"
        )

    if baseline.get("schema") != SCHEMA_VERSION:
        failures.append(
            f"baseline schema mismatch: {baseline.get('schema')!r} != {SCHEMA_VERSION!r} "
            "(regenerate the pinned baseline)"
        )
        return failures
    if fresh["config"] != baseline["config"]:
        failures.append(
            f"config mismatch: fresh {fresh['config']!r} != baseline {baseline['config']!r}"
        )
        return failures

    for key in ("total_words", "total_messages"):
        got, want = fresh["comm"][key], baseline["comm"][key]
        if not np.isclose(got, want, rtol=1e-12, atol=0.0):
            failures.append(
                f"comm drift in {key}: baseline {want!r} != fresh {got!r} "
                "(the simulation is deterministic — a charge changed)"
            )

    base_stages = {entry["stage"]: entry for entry in baseline["attainment"]}
    fresh_stages = {entry["stage"]: entry for entry in fresh["attainment"]}
    if set(base_stages) != set(fresh_stages):
        failures.append(
            f"attainment stage set changed: baseline {sorted(base_stages)} != "
            f"fresh {sorted(fresh_stages)}"
        )
        return failures
    for stage, base_entry in base_stages.items():
        fresh_entry = fresh_stages[stage]
        for comp in ATTAINMENT_COMPONENTS:
            base_ratio = base_entry["ratio"].get(comp)
            fresh_ratio = fresh_entry["ratio"].get(comp)
            if base_ratio is None or fresh_ratio is None:
                continue
            if fresh_ratio > base_ratio * (1.0 + envelope):
                failures.append(
                    f"attainment regression in {stage}/{comp}: measured/model "
                    f"ratio {fresh_ratio:.4g} exceeds baseline {base_ratio:.4g} "
                    f"by more than {100.0 * envelope:.0f}%"
                )
    return failures


def render_metrics(doc: dict[str, Any]) -> str:
    """Human-readable summary of a metrics document."""
    from repro.report.tables import format_table  # late: avoid cycle

    cfg = doc["config"]
    comm = doc["comm"]
    mem = doc["memory"]
    parts: list[str] = [
        f"per-rank metrics (n={cfg['n']}, p={cfg['p']}, delta={cfg['delta']:.3f}, "
        f"engine={cfg['engine']})",
        "",
        format_table(
            ["src", "dst", "words"],
            [[s, d, w] for s, d, w in comm["heaviest_pairs"]],
            title=(
                f"heaviest directed pairs (total {comm['total_words']:.4g} words, "
                f"{comm['total_messages']} messages)"
            ),
        ),
        "",
        format_table(
            ["component", "max/mean", "gini"],
            [
                [f, doc["imbalance"][f]["max_over_mean"], doc["imbalance"][f]["gini"]]
                for f in IMBALANCE_REPORT_FIELDS
            ],
            title="per-rank imbalance",
        ),
        "",
        (
            f"memory: max watermark {mem['max_watermark']:.4g} words, "
            f"max peak {mem['max_peak']:.4g}, model bound {mem['model_bound_words']:.4g} "
            f"({100.0 * (mem['bound_utilization'] or 0.0):.1f}% utilized)"
        ),
    ]
    att_rows = []
    for entry in doc["attainment"]:
        ratios = entry["ratio"]
        att_rows.append(
            [entry["stage"]]
            + [
                f"{ratios[c]:.3g}" if ratios.get(c) is not None else "-"
                for c in ATTAINMENT_COMPONENTS
            ]
        )
    if att_rows:
        parts += [
            "",
            format_table(
                ["stage", "F", "W", "Q", "S"],
                att_rows,
                title="bound attainment (measured / model prediction)",
            ),
        ]
    problems = doc["conservation"]["problems"]
    parts += [
        "",
        "conservation: OK" if not problems else "conservation: " + "; ".join(problems),
    ]
    return "\n".join(parts)
