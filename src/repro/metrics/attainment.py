"""Bound-attainment ratios: measured stage costs ÷ the paper's predictions.

Each eigensolver stage recorded by :func:`repro.eig.driver.eigensolve_2p5d`
carries a structured descriptor (``EigensolveResult.stage_meta``) naming
the lemma/theorem whose cost expression applies:

* ``full_to_band`` — Lemma IV.1 (:func:`repro.model.costs.full_to_band_cost`);
* ``band_to_band`` — Lemma IV.3 (:func:`repro.model.costs.band_to_band_cost`);
* ``ca_sbr`` — Lemma IV.2, summed over the halvings the stage performed
  (:func:`repro.model.costs.ca_sbr_halve_cost`);
* ``finish`` — the sequential band→tridiagonal→Sturm tail, mirrored from
  the driver's explicit charges (:func:`finish_cost`).

The *attainment ratio* of a component is ``measured / predicted``.  The
model expressions are leading-order with unit constants, so the ratios are
O(1) numbers, not 1.0 — what matters is that they stay **stable**: a ratio
drifting up between commits means an implementation regressed against the
bound it used to attain (more words, more flops, more supersteps for the
same inputs).  ``repro metrics --check`` pins them against a committed
baseline with a multiplicative envelope.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.bsp.counters import CostReport
from repro.model.costs import (
    AsymptoticCost,
    band_to_band_cost,
    ca_sbr_halve_cost,
    full_to_band_cost,
)

#: cost components compared per stage, in report order
ATTAINMENT_COMPONENTS: tuple[str, ...] = ("flops", "words", "mem_traffic", "supersteps")


def finish_cost(n: int, b: int) -> AsymptoticCost:
    """Model cost of the sequential finish on the gathered band.

    Mirrors the driver's explicit charges: the band gather (O(n·b) words),
    the sequential band→tridiagonal reduction (O(n·b²) flops with
    O(n·b·log b) streaming) and the Sturm bisection sweeps (O(n²) flops,
    O(n) streaming, 64-sweep constant), in two supersteps.
    """
    logb = max(1.0, float(np.log2(max(2, b))))
    return AsymptoticCost(
        flops=8.0 * n * b * b + 320.0 * n * n,
        words=float(n * (b + 1)),
        mem_traffic=float(n * b) * logb + 128.0 * n,
        supersteps=2.0,
        memory=float(n * (b + 1)),
    )


def stage_model_cost(meta: dict) -> AsymptoticCost | None:
    """The paper's cost expression for one stage descriptor (None if the
    descriptor carries no recognized ``kind``)."""
    kind = meta.get("kind")
    n = int(meta.get("n", 0))
    if kind == "full_to_band":
        return full_to_band_cost(n, int(meta["p_active"]), float(meta["delta"]), int(meta["b_out"]))
    if kind == "band_to_band":
        return band_to_band_cost(
            n, int(meta["b_in"]), int(meta["k"]), int(meta["p_active"]), float(meta["delta"])
        )
    if kind == "ca_sbr":
        # Lemma IV.2 covers one halving; the stage runs them back to back.
        total: AsymptoticCost | None = None
        b = int(meta["b_in"])
        b_out = max(1, int(meta["b_out"]))
        p_active = int(meta["p_active"])
        while b > b_out:
            halve = ca_sbr_halve_cost(n, b, p_active)
            total = halve if total is None else total + halve
            b = max(b_out, b // 2)
        return total
    if kind == "finish":
        return finish_cost(n, int(meta["b_in"]))
    return None


def attainment_ratios(
    stages: list[tuple[str, CostReport]], stage_meta: list[dict]
) -> list[dict]:
    """Measured ÷ predicted cost ratios, one entry per recognized stage.

    Each entry carries the stage name, kind, the predicted and measured
    F/W/Q/S, and the ``ratio`` dict per component (None where the model
    predicts zero, e.g. a degenerate stage).
    """
    out: list[dict] = []
    for (name, measured), meta in zip(stages, stage_meta):
        model = stage_model_cost(meta)
        if model is None:
            continue
        ratios: dict[str, float | None] = {}
        for comp in ATTAINMENT_COMPONENTS:
            predicted = float(getattr(model, comp))
            got = float(getattr(measured, comp))
            ratios[comp] = got / predicted if predicted > 0 else None
        out.append(
            {
                "stage": name,
                "kind": meta.get("kind"),
                "predicted": {c: float(getattr(model, c)) for c in ATTAINMENT_COMPONENTS},
                "measured": {c: float(getattr(measured, c)) for c in ATTAINMENT_COMPONENTS},
                "ratio": ratios,
            }
        )
    return out


def attainment_rollup(per_job: Iterable[list[dict]]) -> dict:
    """Aggregate per-job attainment entries across a batch of solves.

    ``per_job`` yields one :func:`attainment_ratios` list per job (the
    serving layer's per-job roll-up input).  Returns, per stage kind and
    cost component, the mean and max ratio plus the entry count — the
    batch-level view of "are we still attaining the bounds under traffic".
    Deterministic: accumulation follows the given job order, so equal
    inputs give bit-equal output (the serve bench gates on that).
    """
    acc: dict[str, dict[str, list[float]]] = {}
    for entries in per_job:
        for entry in entries:
            kind = str(entry.get("kind"))
            by_comp = acc.setdefault(kind, {})
            for comp in ATTAINMENT_COMPONENTS:
                ratio = entry.get("ratio", {}).get(comp)
                if ratio is None:
                    continue
                slot = by_comp.setdefault(comp, [0.0, 0.0, 0.0])  # sum, count, max
                slot[0] += float(ratio)
                slot[1] += 1.0
                slot[2] = max(slot[2], float(ratio))
    return {
        kind: {
            comp: {"mean": s / c, "max": mx, "count": int(c)}
            for comp, (s, c, mx) in sorted(by_comp.items())
        }
        for kind, by_comp in sorted(acc.items())
    }
