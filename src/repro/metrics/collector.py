"""The per-rank metrics collector: who-talks-to-whom, memory watermarks.

A :class:`MetricsCollector` lives on a metrics-enabled
:class:`~repro.bsp.machine.BSPMachine` as ``machine.metrics`` and is fed by
the machine's charging primitives, so every collective, sharded kernel,
distribution-layer transfer and fault-retransmission in the repo is covered
without per-call-site instrumentation.  It records

* a p×p **communication matrix** (words and messages): entry ``(i, j)`` is
  the traffic attributed to the directed pair ``i → j``;
* per-rank **send/receive mirrors**: arrays accumulated with the *identical
  values in the identical order* as the counter store's ``words_sent`` /
  ``words_recv`` slots, which is what makes the conservation check below
  bit-exact on both engines (same IEEE-754 additions per slot);
* per-rank **memory high-water marks** sampled at superstep boundaries,
  plus a decimated time series for the per-rank Perfetto counter tracks.

Pairwise attribution
--------------------
Collectives with a non-trivial wire pattern (two-phase broadcast/reduce,
all-to-all transfer dicts, dense transfer matrices, point-to-point sends)
pass their **exact** per-pair pattern through the charging primitives.
Charges that only declare per-rank marginals (who sent/received how much)
are split by iterative proportional fitting (IPF/Sinkhorn) of the rank-one
seed ``sent ⊗ recv`` with a zero diagonal — the maximum-entropy flow
consistent with both marginals.  For single-root and uniform patterns
(gather, scatter, allgather, allreduce, reduce-scatter, p2p) the IPF fixed
point *is* the true pattern.  Words that cannot be paired (self-transfers
on one-rank groups, unbalanced one-sided charges) accumulate in
``unpaired_sent``/``unpaired_recv`` so conservation still closes.

Conservation invariant (:meth:`MetricsCollector.verify_conservation`):

* mirrors == live counters, **bit-exact** (``np.array_equal``);
* message-matrix row/column sums == per-rank message counts, exact (int);
* word-matrix row/column sums (+ unpaired) == mirrors, to float-summation
  tolerance (re-summing attributed flows regroups the additions);
* the matrix diagonal is exactly zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bsp.params import MachineParams

#: IPF iteration cap; exact patterns converge in one pass, and anything
#: still unbalanced after this many sweeps takes the unconstrained-split
#: fallback (see :meth:`MetricsCollector._record_flows`)
_IPF_ITERS = 64

#: row-marginal tolerance at which the IPF sweep stops early
_IPF_CONVERGED_RTOL = 1e-13

#: decimated memory/traffic time-series cap (halved + re-strided when hit)
_MAX_SAMPLES = 2048

#: additive counter quantities a rank must have touched to count as active
_ACTIVITY_FIELDS = ("flops", "words_sent", "words_recv", "mem_traffic", "supersteps")


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen per-rank telemetry attached to a :class:`CostReport`.

    Read it with :meth:`repro.bsp.counters.CostReport.metrics`.  All arrays
    are detached copies; ``series`` is the decimated superstep time series
    of ``(model_time, current_memory_words, words_sent)`` samples.
    """

    p: int
    words_matrix: np.ndarray
    messages_matrix: np.ndarray
    sent_words: np.ndarray
    recv_words: np.ndarray
    sent_messages: np.ndarray
    recv_messages: np.ndarray
    unpaired_sent: np.ndarray
    unpaired_recv: np.ndarray
    watermark_words: np.ndarray
    watermark_superstep: np.ndarray
    peak_memory_words: np.ndarray
    supersteps_seen: int
    series: tuple
    conservation_problems: tuple

    @property
    def total_words(self) -> float:
        """All horizontal words sent (== received) across the run."""
        return float(self.sent_words.sum())

    @property
    def total_messages(self) -> int:
        return int(self.messages_matrix.sum())

    def heaviest_pairs(self, k: int = 8) -> list:
        """The ``k`` heaviest directed (src, dst, words) pairs."""
        flat = self.words_matrix.ravel()
        order = np.argsort(flat)[::-1][:k]
        p = self.p
        return [
            (int(i // p), int(i % p), float(flat[i])) for i in order if flat[i] > 0
        ]

    def verify(self) -> list:
        """Conservation problems found at snapshot time ([] = all held)."""
        return list(self.conservation_problems)


class MetricsCollector:
    """Live per-rank telemetry of one machine (``machine.metrics``).

    Fed exclusively by :class:`~repro.bsp.machine.BSPMachine`'s charging
    primitives; with metrics off the machine holds the shared
    :data:`~repro.bsp.machine.NO_METRICS` no-op instead and every
    instrumented site costs a single attribute read.
    """

    enabled = True

    def __init__(self, p: int, params: MachineParams):
        self.p = p
        self._params = params
        self.words_matrix = np.zeros((p, p))
        self.messages_matrix = np.zeros((p, p), dtype=np.int64)
        self.sent_words = np.zeros(p)
        self.recv_words = np.zeros(p)
        self.sent_messages = np.zeros(p, dtype=np.int64)
        self.recv_messages = np.zeros(p, dtype=np.int64)
        self.unpaired_sent = np.zeros(p)
        self.unpaired_recv = np.zeros(p)
        self.watermark_words = np.zeros(p)
        self.watermark_superstep = np.zeros(p, dtype=np.int64)
        self.supersteps_seen = 0
        self.series: list = []
        self._stride = 1

    # ------------------------------------------------------------------ #
    # pairwise attribution

    def _record_pairs(self, pairs) -> None:
        """Accumulate exact (src, dst, words) triples (absolute ranks)."""
        for src, dst, w in pairs:
            if src == dst or w <= 0:
                continue
            self.words_matrix[src, dst] += w
            self.messages_matrix[src, dst] += 1
            self.sent_messages[src] += 1
            self.recv_messages[dst] += 1

    def _record_pair_matrix(self, idx: np.ndarray, off: np.ndarray) -> None:
        """Accumulate an exact zero-diagonal g×g pattern over group ``idx``."""
        sub = np.ix_(idx, idx)
        self.words_matrix[sub] += off
        mask = off > 0.0
        self.messages_matrix[sub] += mask
        self.sent_messages[idx] += mask.sum(axis=1)
        self.recv_messages[idx] += mask.sum(axis=0)

    def _record_flows(self, su, sw, ru, rw) -> None:
        """Split a marginal-only charge into pairwise flows by IPF.

        ``su``/``ru`` are unique absolute-rank index arrays, ``sw``/``rw``
        the aligned word counts.  Rows of the fitted flow matrix match
        ``sw`` and columns match ``rw``.  When the zero-diagonal constraint
        makes that infeasible (a rank whose only counterparty is itself,
        e.g. a band-window owner fetching into its own group), the split
        falls back to the unconstrained maximum-entropy flow and books the
        self-transfers as unpaired local traffic.  The (signed, float-noise
        scale in the feasible case) leftover residuals are always booked to
        the unpaired buckets, so conservation closes identically.
        """
        sm = sw > 0.0
        rm = rw > 0.0
        su, sw = su[sm], sw[sm]
        ru, rw = ru[rm], rw[rm]
        if su.size == 0 or ru.size == 0:
            if su.size:
                self.unpaired_sent[su] += sw
            if ru.size:
                self.unpaired_recv[ru] += rw
            return
        ssum = float(sw.sum())
        rsum = float(rw.sum())
        if not np.isclose(ssum, rsum, rtol=1e-12, atol=0.0):
            # One-sided excess (sends and receives charged separately):
            # only min(ssum, rsum) words can be paired at all.
            t = min(ssum, rsum)
            if ssum > t:
                excess = sw * (1.0 - t / ssum)
                self.unpaired_sent[su] += excess
                sw = sw - excess
            if rsum > t:
                excess = rw * (1.0 - t / rsum)
                self.unpaired_recv[ru] += excess
                rw = rw - excess
        self_pairs = su[:, None] == ru[None, :]
        flows = np.outer(sw, rw)  # cost: free(telemetry attribution, not simulated work)
        flows[self_pairs] = 0.0
        for _ in range(_IPF_ITERS):
            rows = flows.sum(axis=1)
            scale = np.divide(sw, rows, out=np.zeros_like(rows), where=rows > 0)
            flows *= scale[:, None]
            cols = flows.sum(axis=0)
            scale = np.divide(rw, cols, out=np.zeros_like(cols), where=cols > 0)
            flows *= scale[None, :]
            if np.allclose(flows.sum(axis=1), sw, rtol=_IPF_CONVERGED_RTOL, atol=0.0):
                break
        if not (
            np.allclose(flows.sum(axis=1), sw, rtol=1e-9, atol=1e-9)
            and np.allclose(flows.sum(axis=0), rw, rtol=1e-9, atol=1e-9)
        ):
            # Zero-diagonal infeasible: fall back to the unconstrained
            # rank-one split (exact in one pass) and peel off the diagonal.
            flows = np.outer(sw, rw) / float(sw.sum())  # cost: free(telemetry attribution)
            local = np.where(self_pairs, flows, 0.0)
            if local.any():
                local_s = local.sum(axis=1)
                local_r = local.sum(axis=0)
                self.unpaired_sent[su] += local_s
                self.unpaired_recv[ru] += local_r
                sw = sw - local_s
                rw = rw - local_r
                flows = flows - local
        # Signed residual booking: float noise when IPF converged, the
        # genuinely unattributable remainder otherwise.
        self.unpaired_sent[su] += sw - flows.sum(axis=1)
        self.unpaired_recv[ru] += rw - flows.sum(axis=0)
        sub = np.ix_(su, ru)
        self.words_matrix[sub] += flows
        mask = flows > 0.0
        self.messages_matrix[sub] += mask
        self.sent_messages[su] += mask.sum(axis=1)
        self.recv_messages[ru] += mask.sum(axis=0)

    # ------------------------------------------------------------------ #
    # machine hooks (one per charging primitive)

    def on_comm(self, s_idx, s_w, r_idx, r_w, pairs=None) -> None:
        """Mirror a :meth:`~repro.bsp.machine.BSPMachine.charge_comm` call.

        The mirror additions repeat the exact store operations (same
        values, same order), so ``sent_words``/``recv_words`` stay
        bit-identical to the live counters on either engine.
        """
        if s_idx is not None:
            self.sent_words[s_idx] += s_w
        if r_idx is not None:
            self.recv_words[r_idx] += r_w
        if pairs is not None:
            self._record_pairs(pairs)
            return
        empty_i = np.empty(0, dtype=np.int64)
        empty_w = np.empty(0)
        self._record_flows(
            s_idx if s_idx is not None else empty_i,
            s_w if s_w is not None else empty_w,
            r_idx if r_idx is not None else empty_i,
            r_w if r_w is not None else empty_w,
        )

    def on_comm_batch(self, idx, sent, recvd, pairs=None) -> None:
        """Mirror a ``charge_comm_batch`` call (group-aligned form).

        ``pairs``, when given, is the collective's exact zero-diagonal g×g
        pattern in group-position space (e.g. the two-phase broadcast).
        """
        if isinstance(idx, (int, np.integer)):
            # single-rank: the charge is a self-transfer, unattributable
            i = int(idx)
            if sent is not None:
                self.sent_words[i] += sent
                self.unpaired_sent[i] += sent
            if recvd is not None:
                self.recv_words[i] += recvd
                self.unpaired_recv[i] += recvd
            return
        if sent is not None:
            self.sent_words[idx] += sent
        if recvd is not None:
            self.recv_words[idx] += recvd
        if pairs is not None:
            self._record_pair_matrix(idx, np.asarray(pairs, dtype=np.float64))
            return
        g = idx.size

        def _aligned(words) -> np.ndarray:
            if words is None:
                return np.zeros(g)
            if np.ndim(words) == 0:
                return np.full(g, float(words))
            return np.asarray(words, dtype=np.float64)

        self._record_flows(idx, _aligned(sent), idx, _aligned(recvd))

    def on_comm_matrix(self, idx: np.ndarray, off: np.ndarray,
                       sends: np.ndarray, recvs: np.ndarray) -> None:
        """Mirror a ``charge_comm_matrix`` call: the off-diagonal transfer
        matrix is itself the exact pairwise pattern."""
        self.sent_words[idx] += sends
        self.recv_words[idx] += recvs
        self._record_pair_matrix(idx, off)

    def on_superstep(self, store) -> None:
        """Sample per-rank memory at a superstep boundary (watermarks plus
        the decimated time series feeding the Perfetto counter tracks)."""
        cur = np.asarray(store.field_array("current_memory_words"), dtype=np.float64)
        self.supersteps_seen += 1
        grew = cur > self.watermark_words
        if grew.any():
            self.watermark_superstep[grew] = self.supersteps_seen
            self.watermark_words = np.maximum(self.watermark_words, cur)
        if (self.supersteps_seen - 1) % self._stride == 0:
            sent = np.asarray(store.field_array("words_sent"), dtype=np.float64)
            self.series.append((self._model_time(store), cur.copy(), sent.copy()))
            if len(self.series) > _MAX_SAMPLES:
                self.series = self.series[::2]
                self._stride *= 2

    # ------------------------------------------------------------------ #
    # verification and snapshots

    def _model_time(self, store) -> float:
        """Modeled critical-path time of the store's current state."""
        sent = np.asarray(store.field_array("words_sent"), dtype=np.float64)
        recv = np.asarray(store.field_array("words_recv"), dtype=np.float64)
        return self._params.time(
            float(np.asarray(store.field_array("flops")).max()),
            float((sent + recv).max()),
            float(np.asarray(store.field_array("mem_traffic")).max()),
            float(np.asarray(store.field_array("supersteps")).max()),
        )

    def verify_conservation(self, store) -> list:
        """Check the conservation invariant against the live counter store.

        Returns a list of problem descriptions ([] = the invariant holds).
        See the module docstring for what is bit-exact vs float-tolerant.
        """
        problems = []
        sent = np.asarray(store.field_array("words_sent"), dtype=np.float64)
        recv = np.asarray(store.field_array("words_recv"), dtype=np.float64)
        if not np.array_equal(self.sent_words, sent):
            problems.append(
                "sent-words mirror diverged from the counter store "
                "(a charge bypassed the metrics hooks)"
            )
        if not np.array_equal(self.recv_words, recv):
            problems.append(
                "recv-words mirror diverged from the counter store "
                "(a charge bypassed the metrics hooks)"
            )
        if np.diagonal(self.words_matrix).any():
            problems.append("communication matrix has nonzero diagonal entries")
        rows = self.words_matrix.sum(axis=1) + self.unpaired_sent
        if not np.allclose(rows, self.sent_words, rtol=1e-9, atol=1e-6):
            problems.append(
                "word-matrix row sums (+ unpaired) do not reproduce the "
                "per-rank sent words"
            )
        cols = self.words_matrix.sum(axis=0) + self.unpaired_recv
        if not np.allclose(cols, self.recv_words, rtol=1e-9, atol=1e-6):
            problems.append(
                "word-matrix column sums (+ unpaired) do not reproduce the "
                "per-rank received words"
            )
        if not np.array_equal(self.messages_matrix.sum(axis=1), self.sent_messages):
            problems.append("message-matrix row sums diverged from per-rank message counts")
        if not np.array_equal(self.messages_matrix.sum(axis=0), self.recv_messages):
            problems.append("message-matrix column sums diverged from per-rank message counts")
        return problems

    def snapshot(self, store) -> MetricsSnapshot:
        """Detached snapshot (with a final watermark sample and the
        conservation verdict baked in)."""
        cur = np.asarray(store.field_array("current_memory_words"), dtype=np.float64)
        grew = cur > self.watermark_words
        if grew.any():
            self.watermark_superstep[grew] = self.supersteps_seen
            self.watermark_words = np.maximum(self.watermark_words, cur)
        return MetricsSnapshot(
            p=self.p,
            words_matrix=self.words_matrix.copy(),
            messages_matrix=self.messages_matrix.copy(),
            sent_words=self.sent_words.copy(),
            recv_words=self.recv_words.copy(),
            sent_messages=self.sent_messages.copy(),
            recv_messages=self.recv_messages.copy(),
            unpaired_sent=self.unpaired_sent.copy(),
            unpaired_recv=self.unpaired_recv.copy(),
            watermark_words=self.watermark_words.copy(),
            watermark_superstep=self.watermark_superstep.copy(),
            peak_memory_words=np.asarray(
                store.field_array("peak_memory_words"), dtype=np.float64
            ).copy(),
            supersteps_seen=self.supersteps_seen,
            series=tuple(self.series),
            conservation_problems=tuple(self.verify_conservation(store)),
        )

    def reset(self) -> None:
        """Zero all telemetry in place (called by ``BSPMachine.reset``)."""
        self.words_matrix.fill(0.0)
        self.messages_matrix.fill(0)
        self.sent_words.fill(0.0)
        self.recv_words.fill(0.0)
        self.sent_messages.fill(0)
        self.recv_messages.fill(0)
        self.unpaired_sent.fill(0.0)
        self.unpaired_recv.fill(0.0)
        self.watermark_words.fill(0.0)
        self.watermark_superstep.fill(0)
        self.supersteps_seen = 0
        self.series.clear()
        self._stride = 1

    def __repr__(self) -> str:
        return (
            f"MetricsCollector(p={self.p}, words={self.sent_words.sum():.4g}, "
            f"supersteps_seen={self.supersteps_seen})"
        )
