"""ASCII reproductions of the paper's two figures.

* **Figure 1** — the matrices of Algorithm IV.1 at two successive recursive
  steps: the already-banded prefix, the panel [A̅₁₁; A̅₂₁] being factored,
  the untouched (left-looking!) trailing block A₂₂, and the aggregated
  update panels U, V growing by b columns per step.
* **Figure 2** — the QR blocks and update windows of two consecutive
  pipeline phases of Algorithm IV.2, labelled with their (i, j) iteration —
  reproducing the concurrency sets {(3,1),(2,3),(1,5)} / {(3,2),(2,4),(1,6)}.

Both renderings are *derived from the executing code* (the same offsets the
reductions use), not hand-drawn.
"""

from __future__ import annotations

import numpy as np

from repro.eig.schedule import pipeline_schedule


def render_figure1(n_panels: int = 6, step: int = 3, cell: int = 2) -> str:
    """Figure 1: Algorithm IV.1's matrices at recursion steps ``step`` and
    ``step+1`` (panel units; each panel is b×b).

    Legend: ``#`` banded output (done), ``P`` current panel [A̅₁₁; A̅₂₁],
    ``A`` trailing matrix A₂₂ (never updated in place), ``.`` zero;
    the U/V aggregates are drawn beside the matrix (``u``/``v`` columns).
    """
    if step < 1 or step + 1 > n_panels:
        raise ValueError("step out of range")
    out = []
    for s in (step, step + 1):
        grid = [[" "] * n_panels for _ in range(n_panels)]
        for i in range(n_panels):
            for j in range(n_panels):
                if i < s - 1 or j < s - 1:
                    grid[i][j] = "#" if abs(i - j) <= 1 and (i < s - 1 or j < s - 1) else "."
                elif j == s - 1:
                    grid[i][j] = "P"
                elif i == s - 1:
                    grid[i][j] = "P"  # symmetric panel row
                else:
                    grid[i][j] = "A"
        # U/V aggregates: s-1 panel columns, rows below each source panel.
        agg_cols = s - 1
        lines = []
        for i in range(n_panels):
            row = "".join(ch * cell for ch in grid[i])
            uv = "".join(
                ("u" if i > jj else " ") for jj in range(agg_cols)
            )
            vv = "".join(
                ("v" if i > jj else " ") for jj in range(agg_cols)
            )
            lines.append(f"{row}   U:{uv:<{n_panels}} V:{vv:<{n_panels}}")
        out.append(f"recursive step {s} (b-by-b panel units):")
        out.extend(lines)
        out.append("")
    out.append("legend: # banded output   P current panel (QR'd after the")
    out.append("left-looking update)   A untouched trailing matrix   u/v")
    out.append("aggregated update panels (one column block per earlier step)")
    return "\n".join(out)


def render_figure2(n: int = 48, b: int = 8, k: int = 2, phases: tuple[int, int] = (5, 6)) -> str:
    """Figure 2: QR blocks and update windows of two pipeline phases.

    Draws the lower triangle of the band matrix, marking each concurrent
    chase step's QR block with its group digit and its update window with
    ``v`` (the matrix V of that iteration, as in the paper's caption).
    """
    h = b // k
    sched = {ph.phase: ph for ph in pipeline_schedule(n, b, h)}
    panels = []
    for phase in phases:
        if phase not in sched:
            raise ValueError(f"phase {phase} does not exist for n={n}, b={b}, k={k}")
        grid = [["·" if 0 <= i - j <= b else " " for j in range(n)] for i in range(n)]
        labels = []
        for s in sched[phase].steps:
            labels.append(f"({s.i},{s.j})")
            for i in range(s.oqr_r, min(n, s.oqr_r + s.nr)):
                for j in range(s.oqr_c, min(n, s.oqr_c + s.ncols)):
                    if i >= j:
                        grid[i][j] = "Q"
            for i in range(s.oup_c, min(n, s.oup_c + s.nc)):
                for j in range(s.oqr_r, min(n, s.oqr_r + s.nr)):
                    if i >= j and grid[i][j] != "Q":
                        grid[i][j] = "v"
        rows = ["".join(r[: i + 1]) for i, r in enumerate(grid)]
        panels.append((phase, labels, rows))
    out = []
    for phase, labels, rows in panels:
        out.append(f"pipeline phase {phase}: concurrent iterations {', '.join(labels)}")
        out.extend("  " + r for r in rows)
        out.append("")
    out.append("legend: · band   Q QR block being eliminated   v update window")
    out.append("(each concurrent step is executed by its own group Pi-hat_j)")
    return "\n".join(out)
