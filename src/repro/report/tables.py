"""Fixed-width table formatting for benchmark output."""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        if abs(value - round(value)) < 1e-9:
            return f"{int(round(value))}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render rows as an aligned fixed-width text table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(out)


def fit_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log y against log x (scaling exponent)."""
    import numpy as np

    lx = np.log(np.asarray(xs, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    if lx.size < 2:
        raise ValueError("need at least two points to fit an exponent")
    slope, _ = np.polyfit(lx, ly, 1)
    return float(slope)
