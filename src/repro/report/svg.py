"""Dependency-free SVG charts for benchmark artifacts.

matplotlib is not available offline, so the benchmarks emit their scaling
curves as hand-rolled SVG: a log–log line chart is all the paper's cost
claims need (straight lines whose slopes are the exponents).
"""

from __future__ import annotations

import math
from typing import Sequence

_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")
_W, _H = 640, 420
_ML, _MR, _MT, _MB = 70, 20, 40, 50  # margins


def _ticks(lo: float, hi: float, log: bool) -> list[float]:
    if log:
        lo_e = math.floor(math.log10(lo))
        hi_e = math.ceil(math.log10(hi))
        return [10.0**e for e in range(lo_e, hi_e + 1)]
    step = 10 ** math.floor(math.log10(max(hi - lo, 1e-300)))
    first = math.floor(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step / 2:
        if t >= lo - step / 2:
            ticks.append(t)
        t += step
    return ticks[:12]


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    e = math.log10(abs(v))
    if abs(e) >= 4 or (e < 0 and abs(v) < 0.01):
        return f"1e{int(round(math.log10(v)))}" if v > 0 else f"{v:.1e}"
    if v == int(v):
        return str(int(v))
    return f"{v:g}"


def line_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    loglog: bool = True,
) -> str:
    """Render named (x, y) series as an SVG line chart (log–log by default).

    Every point must be positive when ``loglog`` is set.
    """
    if not series or all(len(pts) == 0 for pts in series.values()):
        raise ValueError("line_chart requires at least one non-empty series")
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    if loglog and (min(xs) <= 0 or min(ys) <= 0):
        raise ValueError("log-log chart requires positive coordinates")

    def tx(v: float) -> float:
        lo, hi = min(xs), max(xs)
        if loglog:
            lo, hi, v = math.log10(lo), math.log10(hi), math.log10(v)
        span = (hi - lo) or 1.0
        return _ML + (v - lo) / span * (_W - _ML - _MR)

    def ty(v: float) -> float:
        lo, hi = min(ys), max(ys)
        if loglog:
            lo, hi, v = math.log10(lo), math.log10(hi), math.log10(v)
        span = (hi - lo) or 1.0
        return _H - _MB - (v - lo) / span * (_H - _MT - _MB)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" height="{_H}" '
        f'font-family="monospace" font-size="12">',
        f'<rect width="{_W}" height="{_H}" fill="white"/>',
        f'<text x="{_W / 2}" y="20" text-anchor="middle" font-size="14">{title}</text>',
        f'<text x="{_W / 2}" y="{_H - 10}" text-anchor="middle">{xlabel}</text>',
        f'<text x="15" y="{_H / 2}" text-anchor="middle" '
        f'transform="rotate(-90 15 {_H / 2})">{ylabel}</text>',
        # axes
        f'<line x1="{_ML}" y1="{_MT}" x2="{_ML}" y2="{_H - _MB}" stroke="black"/>',
        f'<line x1="{_ML}" y1="{_H - _MB}" x2="{_W - _MR}" y2="{_H - _MB}" stroke="black"/>',
    ]
    for t in _ticks(min(xs), max(xs), loglog):
        if not min(xs) <= t <= max(xs):
            continue
        parts.append(
            f'<line x1="{tx(t):.1f}" y1="{_H - _MB}" x2="{tx(t):.1f}" y2="{_H - _MB + 5}" stroke="black"/>'
            f'<text x="{tx(t):.1f}" y="{_H - _MB + 18}" text-anchor="middle">{_fmt(t)}</text>'
        )
    for t in _ticks(min(ys), max(ys), loglog):
        if not min(ys) <= t <= max(ys):
            continue
        parts.append(
            f'<line x1="{_ML - 5}" y1="{ty(t):.1f}" x2="{_ML}" y2="{ty(t):.1f}" stroke="black"/>'
            f'<text x="{_ML - 8}" y="{ty(t) + 4:.1f}" text-anchor="end">{_fmt(t)}</text>'
        )
    for idx, (label, pts) in enumerate(series.items()):
        color = _COLORS[idx % len(_COLORS)]
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{tx(x):.1f},{ty(y):.1f}" for i, (x, y) in enumerate(pts)
        )
        parts.append(f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>')
        for x, y in pts:
            parts.append(f'<circle cx="{tx(x):.1f}" cy="{ty(y):.1f}" r="3" fill="{color}"/>')
        ly = _MT + 16 * idx
        parts.append(
            f'<line x1="{_W - _MR - 130}" y1="{ly}" x2="{_W - _MR - 110}" y2="{ly}" '
            f'stroke="{color}" stroke-width="2"/>'
            f'<text x="{_W - _MR - 105}" y="{ly + 4}">{label}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(path, svg: str) -> None:
    """Write an SVG string to disk (parent directory must exist)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg)
