"""ASCII reporting: tables and the paper's structure figures."""

from repro.report.tables import format_table
from repro.report.figures import render_figure1, render_figure2

__all__ = ["format_table", "render_figure1", "render_figure2"]
