"""repro — a reproduction of "A Communication-Avoiding Parallel Algorithm
for the Symmetric Eigenvalue Problem" (Solomonik, Ballard, Demmel, Hoefler;
SPAA 2017).

The library computes all eigenvalues of a dense symmetric matrix with the
paper's 2.5D successive-band-reduction pipeline, executed on a *simulated*
BSP machine that measures the four cost quantities the paper bounds
(F flops, W horizontal words, Q vertical words, S supersteps).

Quickstart::

    import numpy as np
    from repro import BSPMachine, eigensolve_2p5d
    from repro.util import random_symmetric

    machine = BSPMachine(p=64)
    a = random_symmetric(256, seed=0)
    result = eigensolve_2p5d(machine, a, delta=2/3)
    print(result.eigenvalues[:5])
    print(result.cost.summary())      # measured F / W / Q / S

Package map:

==============  =====================================================
``repro.bsp``    simulated BSP machine, collectives, cache model
``repro.dist``   processor grids, distributed dense/banded matrices
``repro.linalg`` sequential numerics (Householder, SBR, tridiagonal)
``repro.blocks`` parallel building blocks (CARMA, streaming MM, TSQR,
                 square-QR, rect-QR) — Section III
``repro.eig``    the eigensolvers and Table I baselines — Section IV
``repro.model``  closed-form cost bounds, Table I, tuning
``repro.report`` ASCII tables and the paper's Figures 1–2
``repro.faults`` seeded fault injection, ABFT detection, recovery
``repro.serve``  batched eigensolver service: workload traces, machine
                 pool, bin-packing scheduler, persistent δ-tuning cache
==============  =====================================================
"""

from repro.bsp import BSPMachine, CostReport, MachineParams, RankGroup
from repro.dist import DistBandMatrix, DistMatrix, ProcGrid
from repro.eig import (
    EigensolveResult,
    band_to_band_2p5d,
    ca_sbr_halve,
    eigensolve_2p5d,
    eigensolve_ca_sbr,
    eigensolve_elpa_like,
    eigensolve_scalapack_like,
    full_to_band_2p5d,
)
from repro.faults import FaultPlan, FaultyMachine
from repro.model import eigensolver_2p5d_cost, render_table1
from repro.serve import EigenService, MachinePool, TuningCache

__version__ = "1.0.0"

__all__ = [
    "BSPMachine",
    "MachineParams",
    "CostReport",
    "RankGroup",
    "ProcGrid",
    "DistMatrix",
    "DistBandMatrix",
    "eigensolve_2p5d",
    "EigensolveResult",
    "full_to_band_2p5d",
    "band_to_band_2p5d",
    "ca_sbr_halve",
    "eigensolve_scalapack_like",
    "eigensolve_elpa_like",
    "eigensolve_ca_sbr",
    "eigensolver_2p5d_cost",
    "render_table1",
    "FaultyMachine",
    "FaultPlan",
    "EigenService",
    "MachinePool",
    "TuningCache",
    "__version__",
]
