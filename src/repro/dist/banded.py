"""Distributed symmetric band matrices.

The band-reduction stages (Algorithm IV.2, CA-SBR) operate on a symmetric
matrix of band-width ``b`` stored as its band only ((b+1)·n words) and
distributed in 1-D contiguous column-panels: group ``Π̂_j`` owns columns
``[(j−1)·n/g, j·n/g)`` (the paper assigns panels of ``b`` columns to groups
of ``p̂ = pb/n`` ranks, which is the same partition).

As with :class:`~repro.dist.matrix.DistMatrix`, the numerical content is a
global dense array (window reads/writes during bulge chasing are cheap and
exact), while ownership drives the communication accounting.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.group import RankGroup
from repro.bsp.machine import BSPMachine
from repro.util.intlog import chunk_offsets, split_evenly
from repro.util.validation import check_symmetric


class DistBandMatrix:
    """Symmetric band-``b`` matrix, columns block-distributed over a group."""

    def __init__(self, machine: BSPMachine, data: np.ndarray, bandwidth: int, group: RankGroup):
        self.machine = machine
        self.data = check_symmetric(data, "band matrix")
        self.n = self.data.shape[0]
        if not 0 <= bandwidth < self.n:
            raise ValueError(f"bandwidth must be in [0, n-1], got {bandwidth}")
        self.b = int(bandwidth)
        self.group = group
        machine.check_group(group)
        sizes = split_evenly(self.n, group.size)
        self._col_starts = np.array(chunk_offsets(sizes) + [self.n], dtype=np.int64)
        self._ranks_arr = np.array(group.ranks, dtype=np.int64)
        # Band storage words per rank: (b+1) words per owned column.
        machine.note_memory(group, (self.b + 1.0) * np.asarray(sizes, dtype=np.float64))

    # ------------------------------------------------------------------ #

    @property
    def words(self) -> int:
        """Total stored words of the band."""
        return (self.b + 1) * self.n

    def owner_of_col(self, j: int) -> int:
        """Rank owning column j."""
        if not 0 <= j < self.n:
            raise IndexError(f"column {j} out of range")
        blk = int(np.searchsorted(self._col_starts, j, side="right") - 1)
        return self.group[blk]

    def owners_of_cols(self, j0: int, j1: int) -> RankGroup:
        """Distinct ranks owning columns [j0, j1)."""
        if j1 <= j0:
            return RankGroup(())
        # Owning blocks are a contiguous run; two searchsorteds replace the
        # old O(j1−j0) per-column scan.  Zero-width blocks inside the run
        # (possible when group.size > n) own no columns and are dropped.
        lo = int(np.searchsorted(self._col_starts, j0, side="right")) - 1
        hi = int(np.searchsorted(self._col_starts, j1 - 1, side="right")) - 1
        blks = np.arange(lo, hi + 1)
        widths = self._col_starts[blks + 1] - self._col_starts[blks]
        return RankGroup(tuple(int(r) for r in self._ranks_arr[blks[widths > 0]]))

    def band_words_in_cols(self, j0: int, j1: int) -> float:
        """Stored band words in columns [j0, j1)."""
        return float((self.b + 1) * max(0, j1 - j0))

    # ------------------------------------------------------------------ #
    # data motion

    def fetch_window(self, rows: slice, cols: slice, to_group: RankGroup, tag: str = "fetch") -> np.ndarray:
        """Bring the window B[rows, cols] onto ``to_group``.

        Charges: owners of the window's columns send the window's *actual
        content* — the stored band plus any live bulge fill, measured as the
        window's nonzero count (a distributed band never ships the zeros
        outside its structure); each member of ``to_group`` receives its
        1/|group| share.  One superstep.
        """
        window = self.data[rows, cols]
        words = float(max(int(np.count_nonzero(window)), min(window.size, 1)))
        owners = self.owners_of_cols(cols.start, cols.stop)
        share = words / to_group.size
        sends: dict[int, float] = {}
        recvs: dict[int, float] = {}
        for r in owners:
            sends[r] = sends.get(r, 0.0) + words / owners.size
        for r in to_group:
            recvs[r] = recvs.get(r, 0.0) + share
        involved = RankGroup(tuple(dict.fromkeys(list(owners) + list(to_group))))
        self.machine.charge_comm(sends=sends, recvs=recvs)
        self.machine.superstep(involved, 1)
        self.machine.trace.record("band_fetch", involved.ranks, words=words, tag=tag)
        window = window.copy()
        if self.machine.faults.enabled:
            self.machine.faults.corrupt_window(window, f"fetch_window:{tag}")
        return window

    def charge_store(self, rows: slice, cols: slice, from_group: RankGroup, tag: str = "store") -> None:
        """Charge the write-back of a window from ``from_group`` to the
        owners of its columns (dual of :meth:`fetch_window`), without
        touching the data — callers that update ``data`` in place use this.
        Like the fetch, only the window's actual (nonzero) content moves."""
        window = self.data[rows, cols]
        words = float(max(int(np.count_nonzero(window)), min(window.size, 1)))
        owners = self.owners_of_cols(cols.start, cols.stop)
        sends = {r: words / from_group.size for r in from_group}
        recvs = {r: words / owners.size for r in owners}
        involved = RankGroup(tuple(dict.fromkeys(list(from_group) + list(owners))))
        self.machine.charge_comm(sends=sends, recvs=recvs)
        self.machine.superstep(involved, 1)
        self.machine.trace.record("band_store", involved.ranks, words=words, tag=tag)

    # -- batched variants (charge into a ChargeLog, one flush per stage) -- #
    #
    # These append the *same* per-rank charge amounts fetch_window /
    # charge_store issue, in the same order, to a
    # :class:`repro.bsp.batch.ChargeLog`; the log's single flush replays
    # them with order-preserving batch adds, so aggregate costs are
    # bit-identical to the per-step path.  Callers must hold
    # ``batched_charging_ok(machine)`` — trace/fault hooks are skipped here.

    def fetch_window_batched(self, log, rows: slice, cols: slice, to_group: RankGroup) -> np.ndarray:
        """ChargeLog twin of :meth:`fetch_window`; returns the window copy."""
        window = self.data[rows, cols]
        words = float(max(int(np.count_nonzero(window)), min(window.size, 1)))
        owners = self.owners_of_cols(cols.start, cols.stop)
        log.charge_comm(owners.indices(), words / owners.size,
                        to_group.indices(), words / to_group.size)
        log.superstep(np.union1d(owners.indices(), to_group.indices()), 1)
        return window.copy()

    def charge_store_batched(self, log, rows: slice, cols: slice, from_group: RankGroup) -> None:
        """ChargeLog twin of :meth:`charge_store` (window already written)."""
        window = self.data[rows, cols]
        words = float(max(int(np.count_nonzero(window)), min(window.size, 1)))
        owners = self.owners_of_cols(cols.start, cols.stop)
        log.charge_comm(from_group.indices(), words / from_group.size,
                        owners.indices(), words / owners.size)
        log.superstep(np.union1d(from_group.indices(), owners.indices()), 1)

    def store_window(self, rows: slice, cols: slice, values: np.ndarray, from_group: RankGroup, tag: str = "store") -> None:
        """Write back a dense window from ``from_group`` to the owners.

        Symmetric counterpart of :meth:`fetch_window` (dual communication).
        The symmetric mirror B[cols, rows] is updated too (the band stores
        one triangle; mirroring is free).
        """
        if values.shape != (rows.stop - rows.start, cols.stop - cols.start):
            raise ValueError("window shape mismatch")
        self.data[rows, cols] = values
        self.data[cols, rows] = values.T
        self.charge_store(rows, cols, from_group, tag=tag)

    def gather(self, target: int, tag: str = "band_gather") -> np.ndarray:
        """Collect the whole band on one rank (end of Algorithm IV.3)."""
        per_rank_cols = np.diff(self._col_starts)
        sends = {
            r: float((self.b + 1) * per_rank_cols[k])
            for k, r in enumerate(self.group)
            if r != target
        }
        recvs = {target: float(sum(sends.values()))}
        group = RankGroup(tuple(dict.fromkeys(list(self.group) + [target])))
        self.machine.charge_comm(sends=sends, recvs=recvs)
        self.machine.superstep(group, 1)
        self.machine.note_memory(target, float(self.words))
        self.machine.trace.record("gather", group.ranks, words=recvs[target], tag=tag)
        if self.machine.faults.enabled:
            # NOTE: gather returns the live array, so a flip here corrupts
            # the band itself — exactly the failure the finish stage's
            # checkpoint + tridiagonal guard must catch and roll back.
            self.machine.faults.corrupt_window(self.data, f"band_gather:{tag}")
        return self.data

    def redistribute(self, new_group: RankGroup, tag: str = "band_redist") -> "DistBandMatrix":
        """Re-partition the columns over a (possibly smaller) group.

        Used between stages of Algorithm IV.3 ("Gather B onto Π̄"): charges
        each source rank the words whose owner changes.
        """
        new = DistBandMatrix(self.machine, self.data, self.b, new_group)
        old_starts, new_starts = self._col_starts, new._col_starts
        # Vectorized owner maps: one array searchsorted per layout instead of
        # a scalar searchsorted per column.  Each moved column contributes
        # the same integer-valued w = b+1, so per-rank counts × w equals the
        # old per-column accumulation bit-for-bit (exact float integers).
        cols = np.arange(self.n)
        src = self._ranks_arr[np.searchsorted(old_starts, cols, side="right") - 1]
        dst = new._ranks_arr[np.searchsorted(new_starts, cols, side="right") - 1]
        mask = src != dst
        w = float(self.b + 1)
        src_ranks, src_counts = np.unique(src[mask], return_counts=True)
        dst_ranks, dst_counts = np.unique(dst[mask], return_counts=True)
        sends = {int(r): float(k) * w for r, k in zip(src_ranks, src_counts)}
        recvs = {int(r): float(k) * w for r, k in zip(dst_ranks, dst_counts)}
        moved = float(int(mask.sum())) * w
        involved = RankGroup(tuple(dict.fromkeys(list(self.group) + list(new_group))))
        self.machine.charge_comm(sends=sends, recvs=recvs)
        self.machine.superstep(involved, 1)
        self.machine.trace.record("band_redistribute", involved.ranks, words=moved, tag=tag)
        return new

    def with_bandwidth(self, new_b: int) -> "DistBandMatrix":
        """Rebind with a smaller declared band-width (after a reduction)."""
        return DistBandMatrix(self.machine, self.data, new_b, self.group)
