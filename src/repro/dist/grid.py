"""N-dimensional processor grids over machine ranks.

The paper's 2.5D algorithms use q×q×c grids (q = p^{1−δ}, c = p^{2δ−1});
Algorithm III.1 addresses layers Π[:, :, l], Algorithm IV.1 hands panels to
sub-grids Π[:, 1:z, :], and Algorithm IV.3 shrinks the active grid between
band-reduction stages.  :class:`ProcGrid` supports all of these as views
over an ordered rank set.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.group import RankGroup
from repro.util.validation import check_positive_int


def factor_2p5d(p: int, delta: float) -> tuple[int, int]:
    """Choose (q, c) with q²·c = p approximating q = p^{1−δ}, c = p^{2δ−1}.

    Searches the divisors of p for the c closest to p^{2δ−1} such that p/c
    is a perfect square — the shape the 2.5D algorithms need.  δ = 1/2 gives
    (√p, 1); δ = 2/3 gives (p^{1/3}, p^{1/3}).
    """
    check_positive_int(p, "p")
    if not 0.5 <= delta <= 2.0 / 3.0 + 1e-12:
        raise ValueError(f"delta must be in [1/2, 2/3], got {delta}")
    target_c = p ** (2.0 * delta - 1.0)
    best: tuple[float, int, int] | None = None
    for c in range(1, p + 1):
        if p % c:
            continue
        q = int(round(np.sqrt(p // c)))
        if q * q * c != p:
            continue
        score = abs(np.log(c) - np.log(target_c)) if target_c > 0 else float(c)
        if best is None or score < best[0]:
            best = (score, q, c)
    if best is None:
        raise ValueError(f"p={p} admits no q*q*c factorization")
    return best[1], best[2]


class ProcGrid:
    """A logical grid of machine ranks (row-major coordinate order).

    ``shape`` may have any number of dimensions; the paper uses (q, q) and
    (q, q, c).  The grid does not own the machine's ranks — several grids
    may coexist (e.g. the shrinking grids of Algorithm IV.3).
    """

    def __init__(self, machine, shape: tuple[int, ...], ranks: RankGroup | None = None):
        self.machine = machine
        self.shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise ValueError(f"grid shape must be positive, got {shape}")
        size = int(np.prod(self.shape))
        if ranks is None:
            if size > machine.p:
                raise ValueError(f"grid of {size} ranks exceeds machine size {machine.p}")
            ranks = RankGroup(tuple(range(size)))
        if ranks.size != size:
            raise ValueError(f"grid shape {shape} needs {size} ranks, got {ranks.size}")
        machine.check_group(ranks)
        self.ranks = ranks

    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        return self.ranks.size

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def rank_at(self, *coords: int) -> int:
        """Global machine rank at the given grid coordinates."""
        if len(coords) != self.ndim:
            raise ValueError(f"expected {self.ndim} coordinates, got {len(coords)}")
        flat = 0
        for c, s in zip(coords, self.shape):
            if not 0 <= c < s:
                raise ValueError(f"coordinate {c} out of range [0, {s})")
            flat = flat * s + c
        return self.ranks[flat]

    def group(self) -> RankGroup:
        """All ranks of the grid as a group."""
        return self.ranks

    # ------------------------------------------------------------------ #
    # views

    def layer(self, l: int) -> "ProcGrid":
        """The 2-D layer Π[:, :, l] of a 3-D grid."""
        if self.ndim != 3:
            raise ValueError("layer() requires a 3-D grid")
        q0, q1, c = self.shape
        if not 0 <= l < c:
            raise ValueError(f"layer {l} out of range [0, {c})")
        sel = tuple(self.rank_at(i, j, l) for i in range(q0) for j in range(q1))
        return ProcGrid(self.machine, (q0, q1), RankGroup(sel))

    def layers(self) -> list["ProcGrid"]:
        """All 2-D layers of a 3-D grid."""
        return [self.layer(l) for l in range(self.shape[2])]

    def fiber(self, i: int, j: int) -> RankGroup:
        """The ranks Π[i, j, :] across layers (replication fiber)."""
        if self.ndim != 3:
            raise ValueError("fiber() requires a 3-D grid")
        return RankGroup(tuple(self.rank_at(i, j, l) for l in range(self.shape[2])))

    def subgrid(self, *slices: slice) -> "ProcGrid":
        """A rectangular sub-grid, e.g. Π[:, 0:z, :] of Algorithm IV.1."""
        if len(slices) != self.ndim:
            raise ValueError(f"expected {self.ndim} slices")
        axes = [range(*sl.indices(s)) for sl, s in zip(slices, self.shape)]
        coords = np.meshgrid(*axes, indexing="ij")
        flat_coords = np.stack([c.ravel() for c in coords], axis=1)
        sel = tuple(self.rank_at(*row) for row in flat_coords)
        new_shape = tuple(len(a) for a in axes)
        return ProcGrid(self.machine, new_shape, RankGroup(sel))

    def row_group(self, i: int) -> RankGroup:
        """Ranks of grid row i (2-D grids)."""
        if self.ndim != 2:
            raise ValueError("row_group() requires a 2-D grid")
        return RankGroup(tuple(self.rank_at(i, j) for j in range(self.shape[1])))

    def col_group(self, j: int) -> RankGroup:
        """Ranks of grid column j (2-D grids)."""
        if self.ndim != 2:
            raise ValueError("col_group() requires a 2-D grid")
        return RankGroup(tuple(self.rank_at(i, j) for i in range(self.shape[0])))

    def __repr__(self) -> str:
        return f"ProcGrid(shape={self.shape}, ranks=[{self.ranks[0]}..{self.ranks[-1]}])"
