"""Processor grids and distributed-matrix layouts with cost accounting.

The parallel algorithms execute orchestrated (sequential Python, global
numpy arrays) but every data motion is declared against these layouts so the
BSP machine measures per-rank communication exactly as the distributed
program would perform it.

* :class:`ProcGrid` — an N-dimensional grid over a subset of machine ranks
  (the paper's q×q×c grids, their layers, and their sub-grids).
* layouts (:mod:`repro.dist.layout`) — cyclic / block / block-cyclic 2-D
  layouts, 1-D block-row layouts, and replication wrappers; each computes
  vectorized owner maps and per-rank word counts.
* :class:`DistMatrix` — a (conceptually global) matrix bound to a layout,
  with replicate / gather / redistribute operations that charge the machine.
* :class:`DistBandMatrix` — 1-D block layout of a symmetric band matrix.
"""

from repro.dist.grid import ProcGrid
from repro.dist.layout import (
    BlockCyclicLayout,
    BlockRowLayout,
    CyclicLayout,
    Layout,
    ReplicatedLayout,
)
from repro.dist.matrix import DistMatrix
from repro.dist.banded import DistBandMatrix

__all__ = [
    "ProcGrid",
    "Layout",
    "CyclicLayout",
    "BlockCyclicLayout",
    "BlockRowLayout",
    "ReplicatedLayout",
    "DistMatrix",
    "DistBandMatrix",
]
