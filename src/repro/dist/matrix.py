"""Distributed dense matrices (global data + layout + machine accounting).

A :class:`DistMatrix` holds the matrix contents as one numpy array (the
orchestrated-simulation convention) together with the layout describing
which virtual rank owns each element.  Every relayout / replication / gather
charges the machine the per-rank word counts the distributed program would
move, computed from the actual owner maps — measured, not modeled.
"""

from __future__ import annotations

import numpy as np

from repro.bsp import collectives
from repro.bsp.group import RankGroup
from repro.bsp.machine import BSPMachine
from repro.dist.grid import ProcGrid
from repro.dist.layout import (
    CyclicLayout,
    Layout,
    ReplicatedLayout,
    transfer_histogram,
)


class DistMatrix:
    """An m×n matrix distributed over a simulated machine."""

    def __init__(self, machine: BSPMachine, data: np.ndarray, layout: Layout):
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"DistMatrix requires 2-D data, got shape {data.shape}")
        if data.shape != (layout.m, layout.n):
            raise ValueError(f"data shape {data.shape} does not match layout ({layout.m}, {layout.n})")
        self.machine = machine
        self.data = data
        self.layout = layout
        self._note_footprint()

    # ------------------------------------------------------------------ #
    # construction

    @classmethod
    def from_global(
        cls,
        machine: BSPMachine,
        data: np.ndarray,
        layout: Layout,
        charge_distribution: bool = False,
    ) -> "DistMatrix":
        """Wrap a global array as a distributed matrix.

        With ``charge_distribution=True``, charges the cost of moving from a
        generic evenly-distributed layout into ``layout`` (the paper's inputs
        arrive "in any load-balanced layout"): every rank sends and receives
        at most its local share, in one superstep.
        """
        mat = cls(machine, data, layout)
        if charge_distribution:
            group = layout.ranks()
            share = data.size / max(1, group.size)
            machine.charge_comm_batch(group, share, share)
            machine.superstep(group, 1)
            machine.trace.record("distribute", group.ranks, words=float(data.size), tag="from_global")
        return mat

    @classmethod
    def cyclic(
        cls, machine: BSPMachine, data: np.ndarray, grid: ProcGrid, charge_distribution: bool = False
    ) -> "DistMatrix":
        """Element-cyclic distribution over a 2-D grid."""
        m, n = data.shape
        return cls.from_global(machine, data, CyclicLayout(grid, m, n), charge_distribution)

    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape

    @property
    def is_replicated(self) -> bool:
        return isinstance(self.layout, ReplicatedLayout)

    def _note_footprint(self) -> None:
        p = self.machine.p
        if isinstance(self.layout, ReplicatedLayout):
            for lay in self.layout.copies:
                wpr = lay.words_per_rank(p)
                for r in lay.ranks():
                    self.machine.note_memory(r, float(wpr[r]))
        else:
            wpr = self.layout.words_per_rank(p)
            for r in self.layout.ranks():
                self.machine.note_memory(r, float(wpr[r]))

    # ------------------------------------------------------------------ #
    # data motion (all charge the machine)

    def replicate(self, layer_grids: list[ProcGrid], tag: str = "replicate") -> "DistMatrix":
        """Replicate onto each layer grid (cyclic layout per layer).

        Implemented as an allgather over each replication fiber: with the
        source spread over all p ranks, each rank of each layer ends holding
        its layer-local share — cost O(local share) per rank, one superstep,
        matching the O(n²/p^{2(1−δ)}) replication cost in Lemma IV.1's proof.
        """
        m, n = self.shape
        layouts = [CyclicLayout(g, m, n) for g in layer_grids]
        c = len(layouts)
        if c == 0:
            raise ValueError("need at least one layer grid")
        # Per-rank words after replication (what each rank must receive,
        # minus what it already holds under the current layout).
        p = self.machine.p
        have = (
            sum(lay.words_per_rank(p) for lay in self.layout.copies)
            if isinstance(self.layout, ReplicatedLayout)
            else self.layout.words_per_rank(p)
        )
        group_ranks: list[int] = []
        sends: dict[int, float] = {}
        recvs: dict[int, float] = {}
        for lay in layouts:
            wpr = lay.words_per_rank(p)
            for r in lay.ranks():
                need = max(0.0, float(wpr[r] - have[r]))
                recvs[r] = recvs.get(r, 0.0) + need
                # Senders: symmetric volume, spread over current owners.
                group_ranks.append(r)
        src_group = self.layout.ranks()
        total_recv = sum(recvs.values())
        for r in src_group:
            sends[r] = sends.get(r, 0.0) + total_recv / src_group.size
        all_ranks = RankGroup(tuple(dict.fromkeys(list(src_group) + group_ranks)))
        self.machine.charge_comm(sends=sends, recvs=recvs)
        self.machine.superstep(all_ranks, 1)
        self.machine.trace.record("replicate", all_ranks.ranks, words=total_recv, tag=tag)
        new_layout = ReplicatedLayout(layouts[0], layouts[1:])
        return DistMatrix(self.machine, self.data, new_layout)

    def redistribute(self, new_layout: Layout, tag: str = "redistribute") -> "DistMatrix":
        """Move to a new layout; charges the actual owner-change histogram."""
        src = self.layout.primary if isinstance(self.layout, ReplicatedLayout) else self.layout
        transfers = transfer_histogram(src, new_layout, self.machine.p)
        involved = RankGroup(
            tuple(dict.fromkeys(list(src.ranks()) + list(new_layout.ranks())))
        )
        collectives.alltoall(self.machine, involved, transfers, tag=tag)
        return DistMatrix(self.machine, self.data, new_layout)

    def gather(self, target: int, tag: str = "gather") -> np.ndarray:
        """Collect the whole matrix on one rank; returns the global array."""
        src = self.layout.primary if isinstance(self.layout, ReplicatedLayout) else self.layout
        p = self.machine.p
        wpr = src.words_per_rank(p)
        sends = {r: float(wpr[r]) for r in src.ranks() if r != target and wpr[r] > 0}
        recvs = {target: float(sum(sends.values()))}
        group = RankGroup(tuple(dict.fromkeys(list(src.ranks()) + [target])))
        self.machine.charge_comm(sends=sends, recvs=recvs)
        self.machine.superstep(group, 1)
        self.machine.note_memory(target, float(self.data.size))
        self.machine.trace.record("gather", group.ranks, words=recvs[target], tag=tag)
        return self.data

    # ------------------------------------------------------------------ #
    # views

    def submatrix(self, roff: int, coff: int, m: int, n: int) -> "DistMatrix":
        """Zero-communication view of a sub-block (ownership preserved)."""
        if roff < 0 or coff < 0 or roff + m > self.shape[0] or coff + n > self.shape[1]:
            raise ValueError("submatrix out of range")
        return DistMatrix(
            self.machine,
            self.data[roff : roff + m, coff : coff + n],
            self.layout.subview(roff, coff, m, n),
        )

    def local_words(self, rank: int) -> int:
        """Words of this matrix stored by ``rank`` (primary copy)."""
        src = self.layout.primary if isinstance(self.layout, ReplicatedLayout) else self.layout
        return int(src.words_per_rank(self.machine.p)[rank])

    def __repr__(self) -> str:
        rep = f" x{self.layout.n_copies}" if self.is_replicated else ""
        return f"DistMatrix({self.shape[0]}x{self.shape[1]}{rep}, {type(self.layout).__name__})"
