"""Matrix-to-processor layouts with vectorized owner maps.

A layout answers "which rank owns element (i, j)?" for an m×n matrix, in a
form that lets the distribution layer compute per-rank word counts (and
redistribution histograms) with numpy instead of per-element Python loops.

Layouts carry *offsets* so that a submatrix view of a cyclically distributed
matrix keeps the ownership of the parent — the mechanism behind the paper's
remark that, since ``b mod q = 0``, the trailing-matrix recursion of
Algorithm IV.1 "can preserve perfect load balance without communication".
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.bsp.group import RankGroup
from repro.util.intlog import ceil_div, chunk_offsets, split_evenly


class Layout(ABC):
    """Abstract ownership map of an m×n matrix over machine ranks."""

    def __init__(self, m: int, n: int):
        if m < 0 or n < 0:
            raise ValueError("matrix dimensions must be nonnegative")
        self.m = int(m)
        self.n = int(n)

    @property
    def words(self) -> int:
        return self.m * self.n

    @abstractmethod
    def owner(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Vectorized element→rank map (broadcasts i against j)."""

    @abstractmethod
    def ranks(self) -> RankGroup:
        """Ranks participating in this layout."""

    @abstractmethod
    def subview(self, roff: int, coff: int, m: int, n: int) -> "Layout":
        """Layout of the submatrix starting at (roff, coff) of size m×n,
        preserving ownership of the parent elements."""

    def owner_map(self) -> np.ndarray:
        """Full (m, n) rank map."""
        i = np.arange(self.m)[:, None]
        j = np.arange(self.n)[None, :]
        return self.owner(i, j)

    def words_per_rank(self, p: int) -> np.ndarray:
        """Array of length p: words owned by each machine rank."""
        return np.bincount(self.owner_map().ravel(), minlength=p)

    def max_local_words(self, p: int) -> int:
        wpr = self.words_per_rank(p)
        return int(wpr.max()) if wpr.size else 0


class CyclicLayout(Layout):
    """Element-cyclic layout over a 2-D grid: (i, j) → grid(i mod q₀, j mod q₁)."""

    def __init__(self, grid, m: int, n: int, roff: int = 0, coff: int = 0):
        super().__init__(m, n)
        if grid.ndim != 2:
            raise ValueError("CyclicLayout requires a 2-D grid")
        self.grid = grid
        self.roff = int(roff)
        self.coff = int(coff)
        q0, q1 = grid.shape
        self._rank_lut = np.array(
            [[grid.rank_at(a, b) for b in range(q1)] for a in range(q0)], dtype=np.int64
        )

    def owner(self, i, j):
        q0, q1 = self.grid.shape
        return self._rank_lut[(np.asarray(i) + self.roff) % q0, (np.asarray(j) + self.coff) % q1]

    def ranks(self) -> RankGroup:
        return self.grid.group()

    def subview(self, roff: int, coff: int, m: int, n: int) -> "CyclicLayout":
        return CyclicLayout(self.grid, m, n, self.roff + roff, self.coff + coff)


class BlockCyclicLayout(Layout):
    """Block-cyclic layout with block size (mb, nb) over a 2-D grid."""

    def __init__(self, grid, m: int, n: int, mb: int, nb: int, roff: int = 0, coff: int = 0):
        super().__init__(m, n)
        if grid.ndim != 2:
            raise ValueError("BlockCyclicLayout requires a 2-D grid")
        if mb <= 0 or nb <= 0:
            raise ValueError("block sizes must be positive")
        self.grid = grid
        self.mb = int(mb)
        self.nb = int(nb)
        self.roff = int(roff)
        self.coff = int(coff)
        q0, q1 = grid.shape
        self._rank_lut = np.array(
            [[grid.rank_at(a, b) for b in range(q1)] for a in range(q0)], dtype=np.int64
        )

    def owner(self, i, j):
        q0, q1 = self.grid.shape
        bi = ((np.asarray(i) + self.roff) // self.mb) % q0
        bj = ((np.asarray(j) + self.coff) // self.nb) % q1
        return self._rank_lut[bi, bj]

    def ranks(self) -> RankGroup:
        return self.grid.group()

    def subview(self, roff: int, coff: int, m: int, n: int) -> "BlockCyclicLayout":
        return BlockCyclicLayout(self.grid, m, n, self.mb, self.nb, self.roff + roff, self.coff + coff)


class BlockRowLayout(Layout):
    """1-D layout: contiguous row blocks over an ordered rank group.

    The layout of TSQR / rect-QR inputs and of the band matrix's row panels.
    """

    def __init__(self, group: RankGroup, m: int, n: int, roff: int = 0, total_m: int | None = None):
        super().__init__(m, n)
        self.group = group
        self.roff = int(roff)
        self.total_m = int(total_m if total_m is not None else m)
        sizes = split_evenly(self.total_m, group.size)
        self._starts = np.array(chunk_offsets(sizes) + [self.total_m], dtype=np.int64)
        self._rank_arr = np.array(group.ranks, dtype=np.int64)

    def owner(self, i, j):
        gi = np.asarray(i) + self.roff
        if np.any(gi < 0) or np.any(gi >= self.total_m):
            raise IndexError("row index outside the layout's global extent")
        block = np.searchsorted(self._starts, gi, side="right") - 1
        out = self._rank_arr[block]
        shape = np.broadcast_shapes(np.shape(out), np.shape(np.asarray(j)))
        return np.broadcast_to(out, shape)

    def ranks(self) -> RankGroup:
        return self.group

    def subview(self, roff: int, coff: int, m: int, n: int) -> "BlockRowLayout":
        return BlockRowLayout(self.group, m, n, self.roff + roff, self.total_m)


class ReplicatedLayout(Layout):
    """A base layout replicated identically on several 2-D grids (layers).

    ``primary`` is layer 0's layout; ``replicas`` are the same pattern on
    the other layers.  Ownership queries return the primary owner; the
    distributed-matrix operations account for all copies.
    """

    def __init__(self, primary: Layout, replicas: list[Layout]):
        super().__init__(primary.m, primary.n)
        for r in replicas:
            if (r.m, r.n) != (primary.m, primary.n):
                raise ValueError("replica shape mismatch")
        self.primary = primary
        self.replicas = list(replicas)

    @property
    def copies(self) -> list[Layout]:
        return [self.primary, *self.replicas]

    @property
    def n_copies(self) -> int:
        return 1 + len(self.replicas)

    def owner(self, i, j):
        return self.primary.owner(i, j)

    def ranks(self) -> RankGroup:
        seen: list[int] = []
        for lay in self.copies:
            for r in lay.ranks():
                if r not in seen:
                    seen.append(r)
        return RankGroup(tuple(seen))

    def subview(self, roff: int, coff: int, m: int, n: int) -> "ReplicatedLayout":
        return ReplicatedLayout(
            self.primary.subview(roff, coff, m, n),
            [r.subview(roff, coff, m, n) for r in self.replicas],
        )


def transfer_histogram(src: Layout, dst: Layout, p: int) -> dict[tuple[int, int], float]:
    """Words to move between each (src_rank, dst_rank) pair to re-layout.

    Elements whose owner does not change cost nothing.  Vectorized over the
    full owner maps.
    """
    if (src.m, src.n) != (dst.m, dst.n):
        raise ValueError("layout shapes differ")
    if src.words == 0:
        return {}
    a = src.owner_map().ravel()
    b = dst.owner_map().ravel()
    moving = a != b
    if not moving.any():
        return {}
    pairs = a[moving] * p + b[moving]
    counts = np.bincount(pairs, minlength=0)
    nz = np.nonzero(counts)[0]
    return {(int(k // p), int(k % p)): float(counts[k]) for k in nz}
