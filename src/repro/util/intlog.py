"""Small integer-math helpers used throughout the BSP algorithms.

The paper assumes matrix dimensions divisible by grid sizes and that several
quantities are powers of two; these helpers centralize rounding/padding so
the algorithm modules stay readable.
"""

from __future__ import annotations


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for nonnegative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div numerator must be nonnegative, got {a}")
    return -(-a // b)


def is_power_of_two(x: int) -> bool:
    """Return True iff ``x`` is a positive power of two (1 counts)."""
    return x > 0 and (x & (x - 1)) == 0


def next_power_of_two(x: int) -> int:
    """Return the smallest power of two >= ``x`` (for positive ``x``)."""
    if x <= 0:
        raise ValueError(f"next_power_of_two requires positive x, got {x}")
    return 1 << (x - 1).bit_length()


def ilog2(x: int) -> int:
    """Return ``floor(log2 x)`` for positive integer ``x``."""
    if x <= 0:
        raise ValueError(f"ilog2 requires positive x, got {x}")
    return x.bit_length() - 1


def next_multiple(x: int, m: int) -> int:
    """Return the smallest multiple of ``m`` >= ``x``."""
    if m <= 0:
        raise ValueError(f"next_multiple requires positive m, got {m}")
    if x <= 0:
        return m
    return ceil_div(x, m) * m


def split_evenly(n: int, parts: int) -> list[int]:
    """Split ``n`` items into ``parts`` contiguous chunk sizes.

    The first ``n % parts`` chunks get one extra item, so sizes differ by at
    most one — the "evenly distributed layout" assumed by the paper's
    algorithms for their inputs.
    """
    if parts <= 0:
        raise ValueError(f"split_evenly requires positive parts, got {parts}")
    if n < 0:
        raise ValueError(f"split_evenly requires nonnegative n, got {n}")
    base, extra = divmod(n, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def chunk_offsets(sizes: list[int]) -> list[int]:
    """Return exclusive prefix sums of ``sizes`` (chunk start offsets)."""
    offsets = [0]
    for s in sizes:
        offsets.append(offsets[-1] + s)
    return offsets[:-1]
