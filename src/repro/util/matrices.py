"""Test-matrix generators.

These produce the symmetric / banded / orthogonal matrices used by the
examples, tests, and benchmark workloads.  All generators take an explicit
``seed`` (or ``rng``) so every experiment in EXPERIMENTS.md is reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_symmetric(n: int, seed: int | np.random.Generator | None = 0, scale: float = 1.0) -> np.ndarray:
    """Return a dense random symmetric n×n matrix with entries O(scale)."""
    n = check_positive_int(n, "n")
    rng = _rng(seed)
    a = rng.standard_normal((n, n)) * scale
    return (a + a.T) / 2.0


def random_banded_symmetric(
    n: int, bandwidth: int, seed: int | np.random.Generator | None = 0, scale: float = 1.0
) -> np.ndarray:
    """Return a random symmetric n×n matrix with band-width ``bandwidth``.

    Band-width ``b`` means entries vanish for ``|i - j| > b`` (paper
    convention: a tridiagonal matrix has band-width 1).
    """
    n = check_positive_int(n, "n")
    if bandwidth < 0 or bandwidth >= n:
        raise ValueError(f"bandwidth must be in [0, n-1], got {bandwidth}")
    a = random_symmetric(n, seed, scale)
    i, j = np.indices((n, n))
    a[np.abs(i - j) > bandwidth] = 0.0
    return a


def random_orthogonal(n: int, seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Return a Haar-ish random orthogonal matrix via QR of a Gaussian."""
    n = check_positive_int(n, "n")
    rng = _rng(seed)
    q, r = np.linalg.qr(rng.standard_normal((n, n)))
    # Fix signs so the distribution does not favour +diag(R) (standard trick).
    return q * np.sign(np.diag(r))


def random_spectrum_symmetric(
    eigenvalues: np.ndarray, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Return a symmetric matrix with exactly the prescribed eigenvalues.

    Useful for accuracy tests: we know the ground-truth spectrum without
    trusting any eigensolver.
    """
    d = np.asarray(eigenvalues, dtype=np.float64).ravel()
    q = random_orthogonal(d.size, seed)
    return (q * d) @ q.T


def wilkinson(n: int) -> np.ndarray:
    """Return the Wilkinson W_n tridiagonal matrix (clustered eigenvalues).

    A classic stress test for symmetric eigensolvers: pairs of eigenvalues
    agree to many digits.
    """
    n = check_positive_int(n, "n")
    m = (n - 1) / 2.0
    diag = np.abs(np.arange(n) - m)
    a = np.diag(diag)
    off = np.ones(n - 1)
    a += np.diag(off, 1) + np.diag(off, -1)
    return a


def clustered_spectrum(n: int, n_clusters: int = 4, spread: float = 1e-8,
                       seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Return ``n`` eigenvalues grouped in ``n_clusters`` tight clusters."""
    n = check_positive_int(n, "n")
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    rng = _rng(seed)
    centers = rng.uniform(-10.0, 10.0, size=n_clusters)
    vals = centers[rng.integers(0, n_clusters, size=n)] + rng.standard_normal(n) * spread
    return np.sort(vals)
