"""Argument validation helpers and cost-free verification oracles.

All public entry points of the library validate their inputs through these
functions so error messages are uniform and tests can assert on them.

This module is the single allowlisted entry point for *reference* numerics
(``repro lint`` exempts it): verification against numpy oracles must go
through :func:`reference_eigenvalues` rather than calling
``np.linalg.eigvalsh`` inline, so the static analyzer can tell checking
from under-counted computing.
"""

from __future__ import annotations

import numpy as np


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer; return it as ``int``."""
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive power of two."""
    value = check_positive_int(value, name)
    if value & (value - 1):
        raise ValueError(f"{name} must be a power of two, got {value}")
    return value


def check_square(a: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``a`` is a 2-D square ndarray of floats."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"{name} must be square 2-D, got shape {a.shape}")
    return a


def frobenius_norm(a: np.ndarray) -> float:
    """‖A‖_F as a cost-free host-side oracle.

    Used for relative tolerances here and by the fault layer's
    norm-preservation guards (every pipeline stage is an orthogonal
    similarity, which preserves the Frobenius norm); algorithms that
    *compute* with norms must charge through the machine instead.
    """
    return float(np.linalg.norm(np.asarray(a, dtype=np.float64)))


def check_symmetric(a: np.ndarray, name: str = "matrix", tol: float = 1e-10) -> np.ndarray:
    """Validate that ``a`` is symmetric to within ``tol``, relative to
    ``max(1, ‖A‖_F)`` so well-conditioned but badly scaled inputs (entries
    of order 1e6, say) are judged by their own magnitude."""
    a = check_square(a, name)
    scale = max(1.0, frobenius_norm(a))
    if np.abs(a - a.T).max(initial=0.0) > tol * scale:
        raise ValueError(f"{name} is not symmetric to tolerance {tol}")
    return a


def check_banded(a: np.ndarray, bandwidth: int, name: str = "matrix", tol: float = 1e-12) -> np.ndarray:
    """Validate that ``a`` has (half) band-width <= ``bandwidth``.

    Band-width ``b`` means ``a[i, j] == 0`` whenever ``|i - j| > b``, the
    convention used throughout the paper.  The tolerance is relative to
    ``max(1, ‖A‖_F)``, as in :func:`check_symmetric`.
    """
    a = check_square(a, name)
    n = a.shape[0]
    scale = max(1.0, frobenius_norm(a))
    i, j = np.indices((n, n))
    outside = np.abs(i - j) > bandwidth
    if outside.any() and np.abs(a[outside]).max(initial=0.0) > tol * scale:
        raise ValueError(f"{name} has nonzeros outside band-width {bandwidth}")
    return a


def reference_eigenvalues(a: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Ground-truth ascending spectrum of a symmetric matrix (cost-free).

    Verification-only oracle: it runs on the *host*, charges no simulated
    machine, and must never feed results back into a charged algorithm.
    """
    return np.linalg.eigvalsh(check_symmetric(a, name))


def reference_spectrum_error(a: np.ndarray, eigenvalues: np.ndarray, name: str = "matrix") -> float:
    """``max |λ − λ_numpy|`` of a computed ascending spectrum (cost-free)."""
    ref = reference_eigenvalues(a, name)
    computed = np.asarray(eigenvalues, dtype=np.float64).ravel()
    if computed.shape != ref.shape:
        raise ValueError(f"expected {ref.shape[0]} eigenvalues, got {computed.shape[0]}")
    return float(np.abs(computed - ref).max())


def matrix_bandwidth(a: np.ndarray, tol: float = 1e-12) -> int:
    """Return the smallest b such that ``a[i,j]=0`` for ``|i-j|>b`` (within tol)."""
    a = check_square(a, "matrix")
    n = a.shape[0]
    scale = max(1.0, float(np.abs(a).max(initial=0.0)))
    for b in range(n - 1, 0, -1):
        # largest offset diagonal with a significant entry
        if max(np.abs(np.diag(a, b)).max(initial=0.0), np.abs(np.diag(a, -b)).max(initial=0.0)) > tol * scale:
            return b
    return 0
