"""Shared utilities: validation, integer math, and test-matrix generators."""

from repro.util.intlog import (
    ceil_div,
    ilog2,
    is_power_of_two,
    next_multiple,
    next_power_of_two,
    split_evenly,
)
from repro.util.validation import (
    check_banded,
    check_positive_int,
    check_power_of_two,
    check_square,
    check_symmetric,
)
from repro.util.matrices import (
    random_banded_symmetric,
    random_orthogonal,
    random_spectrum_symmetric,
    random_symmetric,
    wilkinson,
)

__all__ = [
    "ceil_div",
    "ilog2",
    "is_power_of_two",
    "next_multiple",
    "next_power_of_two",
    "split_evenly",
    "check_banded",
    "check_positive_int",
    "check_power_of_two",
    "check_square",
    "check_symmetric",
    "random_banded_symmetric",
    "random_orthogonal",
    "random_spectrum_symmetric",
    "random_symmetric",
    "wilkinson",
]
