"""Wall-clock benchmark harness for the accounting engine (``repro bench``).

The repo's other benchmarks measure *simulated* BSP cost; this one measures
the **simulator itself** — how fast the accounting engine charges costs —
because simulator wall-clock, not numpy, is what caps the (n, p) any
experiment can reach.

``repro bench`` runs a pinned micro-suite on both accounting engines:

* ``charging_p512`` — machine-level charging throughput: a fixed loop of
  group charges, batched charges, collectives, streaming traffic and
  memory notes on a p=512 machine (no numerics — pure accounting);
* ``eig_n96_p16`` — one full-pipeline :func:`repro.eig.eigensolve_2p5d`
  run at pinned (n, p, δ, seed);
* ``eig_n512_p256`` — the same full pipeline at large pinned (n, p): the
  instance class the batched chase engine exists for, so its wall gate is
  the regression tripwire for every per-step Python loop on the hot path;
* ``scaling_exponents`` — a small pinned (n, p, δ) grid of band-to-band
  runs with the paper's band-width scaling b ≈ n/p^δ; the measured W and S
  are log-log–regressed against Lemma IV.3's closed forms and the fitted
  exponents gated (see :func:`fit_loglog_slope`).

Every case runs on the vectorized ``array`` engine (timed, median of
``--repeats``) and on the pre-vectorization ``scalar`` oracle; their
:class:`~repro.bsp.counters.CostReport`\\ s must be **bit-identical** (per
rank, not just in aggregate) or the run fails.  Results go to
``benchmarks/results/BENCH_engine.json``:

``wall_s``               median wall-clock of the vectorized engine
``scalar_wall_s``        median wall-clock of the scalar oracle
``speedup_vs_scalar``    scalar / array wall ratio
``rank_charges``         per-rank counter updates performed by the case
``rank_charges_per_s``   throughput of the vectorized engine
``cost``                 simulated F / W / Q / S / M (+ totals)

``repro bench --check BENCH_engine.json`` re-runs the suite and fails on

* any simulated-cost drift versus the committed baseline (exact float
  equality — the cost model is deterministic, so any drift is a real
  accounting change that must be recommitted deliberately);
* a >25% wall-clock regression, after rescaling the committed wall numbers
  by the scalar oracle's wall ratio on this host (the oracle acts as the
  hardware calibrator, so the gate is portable across machines); the
  envelope is overridable with ``REPRO_BENCH_ENVELOPE`` (legacy alias
  ``REPRO_BENCH_WALL_TOL``), and a run whose *only* failures are wall
  regressions is re-timed up to ``REPRO_BENCH_RETRIES`` times
  (best-of-k) before failing, so a loaded CI host doesn't flake the gate —
  cost drift and speedup-floor violations are never retried;
* charging-suite speedup below the 3× floor the vectorized engine must
  maintain over the scalar oracle at p ≥ 256.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.bsp import BSPMachine, collectives
from repro.bsp.counters import CostReport, CounterArray

#: default location of the fresh results JSON (relative to the cwd)
DEFAULT_RESULT_PATH = Path("benchmarks") / "results" / "BENCH_engine.json"

#: committed baseline filename at the repo root
BASELINE_NAME = "BENCH_engine.json"

#: pinned micro-suite inputs; changing any of these invalidates a baseline
PINNED: dict[str, dict[str, Any]] = {
    "charging": {"p": 512, "iters": 100},
    "eig": {"n": 96, "p": 16, "delta": 2.0 / 3.0, "seed": 3},
    "eig_large": {"n": 512, "p": 256, "delta": 2.0 / 3.0, "seed": 3},
    # Band-to-band runs with b ≈ n/p^δ (the paper's choice); lists, not
    # tuples, so the pinned block round-trips through JSON unchanged.
    "scaling": {
        "k": 2,
        "seed": 3,
        "grid": [
            [128, 16, 2.0 / 3.0],
            [192, 16, 2.0 / 3.0],
            [256, 32, 2.0 / 3.0],
            [384, 32, 2.0 / 3.0],
            [256, 64, 0.75],
            [384, 64, 0.75],
        ],
    },
}

#: >25% wall regression fails --check (env-overridable for noisy hosts;
#: REPRO_BENCH_ENVELOPE is the documented name, REPRO_BENCH_WALL_TOL the
#: legacy alias)
WALL_TOLERANCE = float(
    os.environ.get("REPRO_BENCH_ENVELOPE")
    or os.environ.get("REPRO_BENCH_WALL_TOL")
    or "1.25"
)

#: wall-only gate failures are re-timed this many times before failing
WALL_RETRIES = int(os.environ.get("REPRO_BENCH_RETRIES", "2"))

#: minimum charging-suite speedup of array over scalar engine (p >= 256)
SPEEDUP_FLOOR = 3.0

#: two-sided tolerance on the fitted W exponent: Lemma IV.3's bandwidth
#: bound is *attained* by the 2.5D schedule, so measured W must track the
#: closed form with unit slope
W_EXPONENT_TOL = 0.1

#: one-sided slack on the fitted S exponent: the lemma's synchronization
#: bound is an upper bound, and the simulator's per-rank superstep maxima
#: do not count pipeline idling, so the measured exponent may sit *below*
#: unity — it just must never exceed the bound's closed form by more than
#: this slack
S_EXPONENT_SLACK = 0.1

#: absolute slack on the wall gate — sub-millisecond walls are dominated by
#: timer granularity and scheduler noise, not engine performance
WALL_ABS_SLACK_S = 0.005

#: cost fields pinned by the baseline (aggregate; per-rank identity is
#: asserted separately against the live scalar oracle on every run)
COST_FIELDS = (
    "flops",
    "words",
    "mem_traffic",
    "supersteps",
    "peak_memory_words",
    "total_flops",
    "total_words",
    "total_mem_traffic",
)

_PER_RANK_FIELDS = (
    "flops",
    "words_sent",
    "words_recv",
    "mem_traffic",
    "supersteps",
    "peak_memory_words",
)


# ------------------------------------------------------------------ #
# report comparison

def per_rank_arrays(report: CostReport) -> dict[str, np.ndarray]:
    """Per-rank counter arrays of a report, whichever engine produced it."""
    pr = report.per_rank
    if isinstance(pr, CounterArray):
        return {name: pr.field_array(name) for name in _PER_RANK_FIELDS}
    return {
        name: np.array([getattr(c, name) for c in pr], dtype=np.float64)
        for name in _PER_RANK_FIELDS
    }


def report_mismatches(a: CostReport, b: CostReport) -> list[str]:
    """Ways two cost reports differ, bit-for-bit ([] means identical)."""
    issues: list[str] = []
    if a.p != b.p:
        return [f"p differs: {a.p} != {b.p}"]
    for name in COST_FIELDS:
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            issues.append(f"{name} differs: {va!r} != {vb!r}")
    pa, pb = per_rank_arrays(a), per_rank_arrays(b)
    for name in _PER_RANK_FIELDS:
        if not np.array_equal(pa[name], pb[name]):
            bad = int(np.argmax(pa[name] != pb[name]))
            issues.append(
                f"per-rank {name} differs first at rank {bad}: "
                f"{pa[name][bad]!r} != {pb[name][bad]!r}"
            )
    return issues


def cost_dict(report: CostReport) -> dict[str, float]:
    """JSON-serializable aggregate cost of a report."""
    out = {name: getattr(report, name) for name in COST_FIELDS}
    out["p"] = report.p
    return out


# ------------------------------------------------------------------ #
# the micro-suite

def charging_workload(machine: BSPMachine, iters: int) -> CostReport:
    """Machine-level charging loop: group, batched, and collective charges.

    Touches every vectorized entry point — uniform and weighted flop
    charges, uniform and matrix-valued comm charges, collectives over the
    world and subgroups, streamed traffic, memory notes, supersteps — with
    zero numpy numerics, so wall-clock is pure accounting overhead.
    """
    world = machine.world
    p = machine.p
    quads = world.split(4)
    weights = np.linspace(1.0, 2.0, p)
    g = quads[0].size
    transfer = np.fromfunction(lambda i, j: (i + j + 1.0) % 7.0, (g, g))
    for _ in range(iters):
        machine.charge_flops(world, 10.0)
        machine.charge_flops_batch(world, weights)
        machine.charge_comm_batch(world, 4.0, 4.0)
        collectives.allreduce(machine, world, 64.0)
        for grp in quads:
            collectives.bcast(machine, grp, 32.0)
            machine.charge_flops(grp, 5.0)
        machine.charge_comm_matrix(quads[0], transfer)
        machine.mem_stream_group(world, 2.0)
        machine.note_memory(world, 100.0)
        machine.superstep(world)
    return machine.cost()


def _charging_rank_charges(p: int, iters: int) -> int:
    """Per-rank counter updates performed by :func:`charging_workload`.

    Per iteration: flops p + flops_batch p + comm 2p + allreduce 4p +
    4×bcast 3(p/4)·4 + 4×flops (p/4)·4 + comm_matrix 2(p/4) +
    stream p + note p + superstep p = 15.5p.
    """
    return int(iters * 15.5 * p)


def run_charging(engine: str) -> tuple[CostReport, float]:
    cfg = PINNED["charging"]
    machine = BSPMachine(cfg["p"], engine=engine)
    t0 = time.perf_counter()
    report = charging_workload(machine, cfg["iters"])
    wall = time.perf_counter() - t0
    return report, wall


def run_eig(engine: str, cfg_key: str = "eig") -> tuple[CostReport, float]:
    from repro.eig import eigensolve_2p5d
    from repro.util.matrices import random_symmetric

    cfg = PINNED[cfg_key]
    a = random_symmetric(cfg["n"], seed=cfg["seed"])
    machine = BSPMachine(cfg["p"], engine=engine)
    t0 = time.perf_counter()
    eigensolve_2p5d(machine, a, delta=cfg["delta"])
    wall = time.perf_counter() - t0
    return machine.cost(), wall


def run_eig_large(engine: str) -> tuple[CostReport, float]:
    return run_eig(engine, "eig_large")


CASES: dict[str, Callable[[str], tuple[CostReport, float]]] = {
    "charging_p512": run_charging,
    "eig_n96_p16": run_eig,
    "eig_n512_p256": run_eig_large,
}

#: pinned-config key backing each case; the pinned block is the source of
#: truth — a case runs iff its inputs are pinned, so tests (and ad-hoc
#: profiling) shrink the suite by monkeypatching ``PINNED``
CASE_PINNED_KEY = {
    "charging_p512": "charging",
    "eig_n96_p16": "eig",
    "eig_n512_p256": "eig_large",
}


# ------------------------------------------------------------------ #
# the scaling-exponent suite (Lemma IV.3)


def scaling_bandwidth(n: int, p: int, delta: float) -> int:
    """The paper's band-width scaling b ≈ n/p^δ, rounded to an even b ≥ 4
    (band-to-band needs k = 2 to divide b)."""
    return max(4, 2 * round(n / p**delta / 2.0))


def lemma_iv3_closed_forms(n: int, p: int, b: int, k: int, delta: float) -> tuple[float, float]:
    """Lemma IV.3's closed-form bandwidth and synchronization bounds,
    dropping constants: W = n^{1+δ}·b^{1−δ}/p^δ and
    S = k^δ·n^{1−δ}·p^δ/b^{1−δ}·log₂p."""
    w = float(n ** (1.0 + delta) * b ** (1.0 - delta) / p**delta)
    s = float(k**delta * n ** (1.0 - delta) * p**delta / b ** (1.0 - delta) * np.log2(p))
    return w, s


def fit_loglog_slope(closed: list[float], measured: list[float]) -> float:
    """Least-squares slope of log(measured) against log(closed form).

    A slope of 1 means the measured cost scales exactly as the lemma's
    closed form across the grid (constants cancel in the regression).
    """
    x = np.log(np.asarray(closed, dtype=np.float64))
    y = np.log(np.asarray(measured, dtype=np.float64))
    xc = x - x.mean()
    return float(np.dot(xc, y - y.mean()) / np.dot(xc, xc))  # cost: free(host-side regression over O(grid) scalars, not simulated work)


def run_scaling_point(engine: str, n: int, p: int, delta: float) -> tuple[CostReport, float]:
    """One band-to-band reduction at (n, p, δ) with b = scaling_bandwidth."""
    from repro.dist.banded import DistBandMatrix
    from repro.eig.band_to_band import band_to_band_2p5d
    from repro.util.matrices import random_banded_symmetric

    cfg = PINNED["scaling"]
    b = scaling_bandwidth(n, p, delta)
    a = random_banded_symmetric(n, b, seed=cfg["seed"])
    machine = BSPMachine(p, engine=engine)
    t0 = time.perf_counter()
    band = DistBandMatrix(machine, a, b, machine.world)
    band_to_band_2p5d(machine, band, k=cfg["k"])
    wall = time.perf_counter() - t0
    return machine.cost(), wall


def run_scaling_case(repeats: int) -> dict[str, Any]:
    """Run the pinned scaling grid on both engines; fit and gate exponents.

    Each grid point's vectorized report must be bit-identical to the scalar
    oracle's; the fitted W exponent must be 1 ± ``W_EXPONENT_TOL`` and the
    fitted S exponent at most 1 + ``S_EXPONENT_SLACK``.  The fitted slopes
    and per-point measurements land in the entry's ``cost`` dict, so the
    baseline check pins them by exact equality like every other cost.
    """
    cfg = PINNED["scaling"]
    array_walls = [0.0] * repeats
    scalar_walls = [0.0] * repeats
    w_meas: list[float] = []
    s_meas: list[int] = []
    w_closed: list[float] = []
    s_closed: list[float] = []
    grid_doc: list[dict[str, Any]] = []
    for n, p, delta in cfg["grid"]:
        array_report = scalar_report = None
        for r in range(repeats):
            array_report, wall = run_scaling_point("array", n, p, delta)
            array_walls[r] += wall
            scalar_report, wall = run_scaling_point("scalar", n, p, delta)
            scalar_walls[r] += wall
        assert array_report is not None and scalar_report is not None
        mismatches = report_mismatches(array_report, scalar_report)
        if mismatches:
            raise BenchError(
                f"scaling_exponents (n={n}, p={p}, delta={delta:g}): vectorized "
                "engine drifted from the scalar oracle:\n  " + "\n  ".join(mismatches)
            )
        b = scaling_bandwidth(n, p, delta)
        wc, sc = lemma_iv3_closed_forms(n, p, b, cfg["k"], delta)
        w_meas.append(float(array_report.words))
        s_meas.append(int(array_report.supersteps))
        w_closed.append(wc)
        s_closed.append(sc)
        grid_doc.append({"n": n, "p": p, "delta": delta, "b": b})
    w_exp = fit_loglog_slope(w_closed, w_meas)
    s_exp = fit_loglog_slope(s_closed, [float(s) for s in s_meas])
    if abs(w_exp - 1.0) > W_EXPONENT_TOL:
        raise BenchError(
            f"scaling_exponents: fitted W exponent {w_exp:.4f} is outside "
            f"1 +/- {W_EXPONENT_TOL} — measured bandwidth no longer scales as "
            "Lemma IV.3's closed form"
        )
    if s_exp > 1.0 + S_EXPONENT_SLACK:
        raise BenchError(
            f"scaling_exponents: fitted S exponent {s_exp:.4f} exceeds "
            f"1 + {S_EXPONENT_SLACK} — measured synchronization grows faster "
            "than Lemma IV.3's bound"
        )
    wall = statistics.median(array_walls)
    scalar_wall = statistics.median(scalar_walls)
    return {
        "wall_s": wall,
        "wall_s_runs": array_walls,
        "scalar_wall_s": scalar_wall,
        "speedup_vs_scalar": scalar_wall / wall if wall > 0 else float("inf"),
        "grid": grid_doc,
        "cost": {
            "W_exponent": w_exp,
            "S_exponent": s_exp,
            "W_measured": w_meas,
            "S_measured": s_meas,
        },
    }


# ------------------------------------------------------------------ #
# suite driver

class BenchError(RuntimeError):
    """The benchmark suite failed (oracle mismatch or gate violation)."""


def run_suite(repeats: int = 3, log: Callable[[str], None] = print) -> dict[str, Any]:
    """Run every case on both engines; return the results document.

    Raises :class:`BenchError` if any case's vectorized report is not
    bit-identical to the scalar oracle's.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    results: dict[str, Any] = {"version": 1, "pinned": PINNED, "cases": {}}
    for name, case in CASES.items():
        if CASE_PINNED_KEY[name] not in PINNED:
            continue
        array_walls: list[float] = []
        scalar_walls: list[float] = []
        array_report = scalar_report = None
        for _ in range(repeats):
            array_report, wall = case("array")
            array_walls.append(wall)
            scalar_report, wall = case("scalar")
            scalar_walls.append(wall)
        assert array_report is not None and scalar_report is not None
        mismatches = report_mismatches(array_report, scalar_report)
        if mismatches:
            raise BenchError(
                f"{name}: vectorized engine drifted from the scalar oracle:\n  "
                + "\n  ".join(mismatches)
            )
        wall = statistics.median(array_walls)
        scalar_wall = statistics.median(scalar_walls)
        entry: dict[str, Any] = {
            "wall_s": wall,
            "wall_s_runs": array_walls,
            "scalar_wall_s": scalar_wall,
            "speedup_vs_scalar": scalar_wall / wall if wall > 0 else float("inf"),
            "cost": cost_dict(array_report),
        }
        if name == "charging_p512":
            cfg = PINNED["charging"]
            entry["rank_charges"] = _charging_rank_charges(cfg["p"], cfg["iters"])
            entry["rank_charges_per_s"] = entry["rank_charges"] / wall if wall > 0 else float("inf")
        results["cases"][name] = entry
        log(
            f"{name}: wall={wall:.4f}s scalar={scalar_wall:.4f}s "
            f"speedup={entry['speedup_vs_scalar']:.1f}x  oracle=identical"
        )
    if "scaling" in PINNED:
        entry = run_scaling_case(repeats)
        results["cases"]["scaling_exponents"] = entry
        log(
            f"scaling_exponents: wall={entry['wall_s']:.4f}s "
            f"scalar={entry['scalar_wall_s']:.4f}s "
            f"W_exp={entry['cost']['W_exponent']:.4f} "
            f"S_exp={entry['cost']['S_exponent']:.4f}  oracle=identical"
        )
    return results


def check_against_baseline(
    fresh: dict[str, Any], baseline: dict[str, Any], wall_tolerance: float = WALL_TOLERANCE
) -> list[str]:
    """Gate failures of a fresh run versus the committed baseline ([] = pass).

    Simulated costs must match exactly.  Wall-clock is compared after
    rescaling the baseline by the scalar oracle's wall ratio on this host,
    so the gate measures engine regressions, not hardware differences.
    """
    failures: list[str] = []
    if fresh.get("pinned") != baseline.get("pinned"):
        failures.append(
            "pinned suite inputs differ from the baseline — regenerate it with "
            "`repro bench --out BENCH_engine.json`"
        )
        return failures
    for name, entry in fresh["cases"].items():
        base = baseline.get("cases", {}).get(name)
        if base is None:
            failures.append(f"{name}: missing from baseline")
            continue
        for field, value in entry["cost"].items():
            base_value = base["cost"].get(field)
            if base_value != value:
                failures.append(
                    f"{name}: simulated-cost drift in {field}: "
                    f"baseline {base_value!r} != fresh {value!r}"
                )
        scale = (
            entry["scalar_wall_s"] / base["scalar_wall_s"] if base.get("scalar_wall_s") else 1.0
        )
        budget = wall_tolerance * base["wall_s"] * scale + WALL_ABS_SLACK_S
        if entry["wall_s"] > budget:
            failures.append(
                f"{name}: wall-clock regression: {entry['wall_s']:.4f}s exceeds "
                f"{budget:.4f}s (= {wall_tolerance:.2f} x baseline {base['wall_s']:.4f}s "
                f"x host-scale {scale:.2f})"
            )
        # The speedup floor is a claim about large machines (vectorization
        # amortizes over p); only enforce it at the pinned p >= 256.
        charging_p = fresh["pinned"].get("charging", {}).get("p", 0)
        if name == "charging_p512" and charging_p >= 256 and entry["speedup_vs_scalar"] < SPEEDUP_FLOOR:
            failures.append(
                f"{name}: speedup over the scalar oracle fell to "
                f"{entry['speedup_vs_scalar']:.2f}x (< {SPEEDUP_FLOOR:.0f}x floor)"
            )
    return failures


def check_with_retries(
    results: dict[str, Any],
    baseline: dict[str, Any],
    rerun: Callable[[], dict[str, Any]],
    wall_tolerance: float = WALL_TOLERANCE,
    retries: int = WALL_RETRIES,
    log: Callable[[str], None] = print,
    check: Callable[[dict[str, Any], dict[str, Any], float], list[str]] | None = None,
) -> tuple[dict[str, Any], list[str]]:
    """Gate with best-of-k retries for *wall-only* failures.

    Wall-clock on a loaded CI host is the one non-deterministic gate input;
    when every failure from ``check`` (default
    :func:`check_against_baseline`) is a wall-clock regression, the suite
    is re-timed (via ``rerun``) up to ``retries`` times and the gate
    re-evaluated.  Any simulated-cost drift or speedup-floor violation
    short-circuits immediately — those are deterministic and a retry would
    only mask a real regression.  Fully deterministic gates (e.g. the
    ``repro metrics`` conservation/attainment check) reuse this entry point
    with their own ``check``; none of their failures mention wall clocks,
    so they never retry.

    Returns ``(results, failures)`` where ``results`` is the run the final
    verdict was computed from.
    """
    if check is None:
        check = check_against_baseline
    failures = check(results, baseline, wall_tolerance)
    attempt = 0
    while (
        failures
        and attempt < retries
        and all("wall-clock regression" in f for f in failures)
    ):
        attempt += 1
        log(
            f"wall envelope exceeded (attempt {attempt}/{retries}); "
            "re-timing the suite..."
        )
        results = rerun()
        failures = check(results, baseline, wall_tolerance)
    return results, failures


def render_results(results: dict[str, Any]) -> str:
    """Fixed-width summary table of a results document."""
    from repro.report.tables import format_table

    rows = []
    for name, entry in results["cases"].items():
        cost = entry["cost"]
        per_s = entry.get("rank_charges_per_s")
        rows.append(
            [
                name,
                f"{entry['wall_s']:.4f}",
                f"{entry['scalar_wall_s']:.4f}",
                f"{entry['speedup_vs_scalar']:.1f}x",
                f"{per_s:.3g}" if per_s is not None else "-",
                f"{cost['flops']:.6g}" if "flops" in cost else f"Wexp={cost['W_exponent']:.3f}",
                f"{cost['words']:.6g}" if "words" in cost else f"Sexp={cost['S_exponent']:.3f}",
                f"{cost['mem_traffic']:.6g}" if "mem_traffic" in cost else "-",
                int(cost["supersteps"]) if "supersteps" in cost else "-",
            ]
        )
    return format_table(
        ["case", "wall s", "scalar s", "speedup", "charges/s", "F", "W", "Q", "S"],
        rows,
        title="accounting-engine benchmark (medians; oracle bit-identical)",
    )


def write_results(results: dict[str, Any], path: Path) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Path) -> dict[str, Any]:
    if not path.is_file():
        raise FileNotFoundError(
            f"no benchmark baseline at {path}; create one with `repro bench --out {path}`"
        )
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        raise BenchError(f"benchmark baseline {path} is unreadable: {exc}") from exc
    except ValueError as exc:
        raise BenchError(
            f"benchmark baseline {path} is not valid JSON ({exc}); "
            f"regenerate it with `repro bench --out {path}`"
        ) from exc
