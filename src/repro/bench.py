"""Wall-clock benchmark harness for the accounting engine (``repro bench``).

The repo's other benchmarks measure *simulated* BSP cost; this one measures
the **simulator itself** — how fast the accounting engine charges costs —
because simulator wall-clock, not numpy, is what caps the (n, p) any
experiment can reach.

``repro bench`` runs a pinned micro-suite on both accounting engines:

* ``charging_p512`` — machine-level charging throughput: a fixed loop of
  group charges, batched charges, collectives, streaming traffic and
  memory notes on a p=512 machine (no numerics — pure accounting);
* ``eig_n96_p16`` — one full-pipeline :func:`repro.eig.eigensolve_2p5d`
  run at pinned (n, p, δ, seed).

Every case runs on the vectorized ``array`` engine (timed, median of
``--repeats``) and on the pre-vectorization ``scalar`` oracle; their
:class:`~repro.bsp.counters.CostReport`\\ s must be **bit-identical** (per
rank, not just in aggregate) or the run fails.  Results go to
``benchmarks/results/BENCH_engine.json``:

``wall_s``               median wall-clock of the vectorized engine
``scalar_wall_s``        median wall-clock of the scalar oracle
``speedup_vs_scalar``    scalar / array wall ratio
``rank_charges``         per-rank counter updates performed by the case
``rank_charges_per_s``   throughput of the vectorized engine
``cost``                 simulated F / W / Q / S / M (+ totals)

``repro bench --check BENCH_engine.json`` re-runs the suite and fails on

* any simulated-cost drift versus the committed baseline (exact float
  equality — the cost model is deterministic, so any drift is a real
  accounting change that must be recommitted deliberately);
* a >25% wall-clock regression, after rescaling the committed wall numbers
  by the scalar oracle's wall ratio on this host (the oracle acts as the
  hardware calibrator, so the gate is portable across machines); the
  envelope is overridable with ``REPRO_BENCH_ENVELOPE`` (legacy alias
  ``REPRO_BENCH_WALL_TOL``), and a run whose *only* failures are wall
  regressions is re-timed up to ``REPRO_BENCH_RETRIES`` times
  (best-of-k) before failing, so a loaded CI host doesn't flake the gate —
  cost drift and speedup-floor violations are never retried;
* charging-suite speedup below the 3× floor the vectorized engine must
  maintain over the scalar oracle at p ≥ 256.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.bsp import BSPMachine, collectives
from repro.bsp.counters import CostReport, CounterArray

#: default location of the fresh results JSON (relative to the cwd)
DEFAULT_RESULT_PATH = Path("benchmarks") / "results" / "BENCH_engine.json"

#: committed baseline filename at the repo root
BASELINE_NAME = "BENCH_engine.json"

#: pinned micro-suite inputs; changing any of these invalidates a baseline
PINNED: dict[str, dict[str, Any]] = {
    "charging": {"p": 512, "iters": 100},
    "eig": {"n": 96, "p": 16, "delta": 2.0 / 3.0, "seed": 3},
}

#: >25% wall regression fails --check (env-overridable for noisy hosts;
#: REPRO_BENCH_ENVELOPE is the documented name, REPRO_BENCH_WALL_TOL the
#: legacy alias)
WALL_TOLERANCE = float(
    os.environ.get("REPRO_BENCH_ENVELOPE")
    or os.environ.get("REPRO_BENCH_WALL_TOL")
    or "1.25"
)

#: wall-only gate failures are re-timed this many times before failing
WALL_RETRIES = int(os.environ.get("REPRO_BENCH_RETRIES", "2"))

#: minimum charging-suite speedup of array over scalar engine (p >= 256)
SPEEDUP_FLOOR = 3.0

#: absolute slack on the wall gate — sub-millisecond walls are dominated by
#: timer granularity and scheduler noise, not engine performance
WALL_ABS_SLACK_S = 0.005

#: cost fields pinned by the baseline (aggregate; per-rank identity is
#: asserted separately against the live scalar oracle on every run)
COST_FIELDS = (
    "flops",
    "words",
    "mem_traffic",
    "supersteps",
    "peak_memory_words",
    "total_flops",
    "total_words",
    "total_mem_traffic",
)

_PER_RANK_FIELDS = (
    "flops",
    "words_sent",
    "words_recv",
    "mem_traffic",
    "supersteps",
    "peak_memory_words",
)


# ------------------------------------------------------------------ #
# report comparison

def per_rank_arrays(report: CostReport) -> dict[str, np.ndarray]:
    """Per-rank counter arrays of a report, whichever engine produced it."""
    pr = report.per_rank
    if isinstance(pr, CounterArray):
        return {name: pr.field_array(name) for name in _PER_RANK_FIELDS}
    return {
        name: np.array([getattr(c, name) for c in pr], dtype=np.float64)
        for name in _PER_RANK_FIELDS
    }


def report_mismatches(a: CostReport, b: CostReport) -> list[str]:
    """Ways two cost reports differ, bit-for-bit ([] means identical)."""
    issues: list[str] = []
    if a.p != b.p:
        return [f"p differs: {a.p} != {b.p}"]
    for name in COST_FIELDS:
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            issues.append(f"{name} differs: {va!r} != {vb!r}")
    pa, pb = per_rank_arrays(a), per_rank_arrays(b)
    for name in _PER_RANK_FIELDS:
        if not np.array_equal(pa[name], pb[name]):
            bad = int(np.argmax(pa[name] != pb[name]))
            issues.append(
                f"per-rank {name} differs first at rank {bad}: "
                f"{pa[name][bad]!r} != {pb[name][bad]!r}"
            )
    return issues


def cost_dict(report: CostReport) -> dict[str, float]:
    """JSON-serializable aggregate cost of a report."""
    out = {name: getattr(report, name) for name in COST_FIELDS}
    out["p"] = report.p
    return out


# ------------------------------------------------------------------ #
# the micro-suite

def charging_workload(machine: BSPMachine, iters: int) -> CostReport:
    """Machine-level charging loop: group, batched, and collective charges.

    Touches every vectorized entry point — uniform and weighted flop
    charges, uniform and matrix-valued comm charges, collectives over the
    world and subgroups, streamed traffic, memory notes, supersteps — with
    zero numpy numerics, so wall-clock is pure accounting overhead.
    """
    world = machine.world
    p = machine.p
    quads = world.split(4)
    weights = np.linspace(1.0, 2.0, p)
    g = quads[0].size
    transfer = np.fromfunction(lambda i, j: (i + j + 1.0) % 7.0, (g, g))
    for _ in range(iters):
        machine.charge_flops(world, 10.0)
        machine.charge_flops_batch(world, weights)
        machine.charge_comm_batch(world, 4.0, 4.0)
        collectives.allreduce(machine, world, 64.0)
        for grp in quads:
            collectives.bcast(machine, grp, 32.0)
            machine.charge_flops(grp, 5.0)
        machine.charge_comm_matrix(quads[0], transfer)
        machine.mem_stream_group(world, 2.0)
        machine.note_memory(world, 100.0)
        machine.superstep(world)
    return machine.cost()


def _charging_rank_charges(p: int, iters: int) -> int:
    """Per-rank counter updates performed by :func:`charging_workload`.

    Per iteration: flops p + flops_batch p + comm 2p + allreduce 4p +
    4×bcast 3(p/4)·4 + 4×flops (p/4)·4 + comm_matrix 2(p/4) +
    stream p + note p + superstep p = 15.5p.
    """
    return int(iters * 15.5 * p)


def run_charging(engine: str) -> tuple[CostReport, float]:
    cfg = PINNED["charging"]
    machine = BSPMachine(cfg["p"], engine=engine)
    t0 = time.perf_counter()
    report = charging_workload(machine, cfg["iters"])
    wall = time.perf_counter() - t0
    return report, wall


def run_eig(engine: str) -> tuple[CostReport, float]:
    from repro.eig import eigensolve_2p5d
    from repro.util.matrices import random_symmetric

    cfg = PINNED["eig"]
    a = random_symmetric(cfg["n"], seed=cfg["seed"])
    machine = BSPMachine(cfg["p"], engine=engine)
    t0 = time.perf_counter()
    eigensolve_2p5d(machine, a, delta=cfg["delta"])
    wall = time.perf_counter() - t0
    return machine.cost(), wall


CASES: dict[str, Callable[[str], tuple[CostReport, float]]] = {
    "charging_p512": run_charging,
    "eig_n96_p16": run_eig,
}


# ------------------------------------------------------------------ #
# suite driver

class BenchError(RuntimeError):
    """The benchmark suite failed (oracle mismatch or gate violation)."""


def run_suite(repeats: int = 3, log: Callable[[str], None] = print) -> dict[str, Any]:
    """Run every case on both engines; return the results document.

    Raises :class:`BenchError` if any case's vectorized report is not
    bit-identical to the scalar oracle's.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    results: dict[str, Any] = {"version": 1, "pinned": PINNED, "cases": {}}
    for name, case in CASES.items():
        array_walls: list[float] = []
        scalar_walls: list[float] = []
        array_report = scalar_report = None
        for _ in range(repeats):
            array_report, wall = case("array")
            array_walls.append(wall)
            scalar_report, wall = case("scalar")
            scalar_walls.append(wall)
        assert array_report is not None and scalar_report is not None
        mismatches = report_mismatches(array_report, scalar_report)
        if mismatches:
            raise BenchError(
                f"{name}: vectorized engine drifted from the scalar oracle:\n  "
                + "\n  ".join(mismatches)
            )
        wall = statistics.median(array_walls)
        scalar_wall = statistics.median(scalar_walls)
        entry: dict[str, Any] = {
            "wall_s": wall,
            "wall_s_runs": array_walls,
            "scalar_wall_s": scalar_wall,
            "speedup_vs_scalar": scalar_wall / wall if wall > 0 else float("inf"),
            "cost": cost_dict(array_report),
        }
        if name == "charging_p512":
            cfg = PINNED["charging"]
            entry["rank_charges"] = _charging_rank_charges(cfg["p"], cfg["iters"])
            entry["rank_charges_per_s"] = entry["rank_charges"] / wall if wall > 0 else float("inf")
        results["cases"][name] = entry
        log(
            f"{name}: wall={wall:.4f}s scalar={scalar_wall:.4f}s "
            f"speedup={entry['speedup_vs_scalar']:.1f}x  oracle=identical"
        )
    return results


def check_against_baseline(
    fresh: dict[str, Any], baseline: dict[str, Any], wall_tolerance: float = WALL_TOLERANCE
) -> list[str]:
    """Gate failures of a fresh run versus the committed baseline ([] = pass).

    Simulated costs must match exactly.  Wall-clock is compared after
    rescaling the baseline by the scalar oracle's wall ratio on this host,
    so the gate measures engine regressions, not hardware differences.
    """
    failures: list[str] = []
    if fresh.get("pinned") != baseline.get("pinned"):
        failures.append(
            "pinned suite inputs differ from the baseline — regenerate it with "
            "`repro bench --out BENCH_engine.json`"
        )
        return failures
    for name, entry in fresh["cases"].items():
        base = baseline.get("cases", {}).get(name)
        if base is None:
            failures.append(f"{name}: missing from baseline")
            continue
        for field, value in entry["cost"].items():
            base_value = base["cost"].get(field)
            if base_value != value:
                failures.append(
                    f"{name}: simulated-cost drift in {field}: "
                    f"baseline {base_value!r} != fresh {value!r}"
                )
        scale = (
            entry["scalar_wall_s"] / base["scalar_wall_s"] if base.get("scalar_wall_s") else 1.0
        )
        budget = wall_tolerance * base["wall_s"] * scale + WALL_ABS_SLACK_S
        if entry["wall_s"] > budget:
            failures.append(
                f"{name}: wall-clock regression: {entry['wall_s']:.4f}s exceeds "
                f"{budget:.4f}s (= {wall_tolerance:.2f} x baseline {base['wall_s']:.4f}s "
                f"x host-scale {scale:.2f})"
            )
        # The speedup floor is a claim about large machines (vectorization
        # amortizes over p); only enforce it at the pinned p >= 256.
        charging_p = fresh["pinned"].get("charging", {}).get("p", 0)
        if name == "charging_p512" and charging_p >= 256 and entry["speedup_vs_scalar"] < SPEEDUP_FLOOR:
            failures.append(
                f"{name}: speedup over the scalar oracle fell to "
                f"{entry['speedup_vs_scalar']:.2f}x (< {SPEEDUP_FLOOR:.0f}x floor)"
            )
    return failures


def check_with_retries(
    results: dict[str, Any],
    baseline: dict[str, Any],
    rerun: Callable[[], dict[str, Any]],
    wall_tolerance: float = WALL_TOLERANCE,
    retries: int = WALL_RETRIES,
    log: Callable[[str], None] = print,
    check: Callable[[dict[str, Any], dict[str, Any], float], list[str]] | None = None,
) -> tuple[dict[str, Any], list[str]]:
    """Gate with best-of-k retries for *wall-only* failures.

    Wall-clock on a loaded CI host is the one non-deterministic gate input;
    when every failure from ``check`` (default
    :func:`check_against_baseline`) is a wall-clock regression, the suite
    is re-timed (via ``rerun``) up to ``retries`` times and the gate
    re-evaluated.  Any simulated-cost drift or speedup-floor violation
    short-circuits immediately — those are deterministic and a retry would
    only mask a real regression.  Fully deterministic gates (e.g. the
    ``repro metrics`` conservation/attainment check) reuse this entry point
    with their own ``check``; none of their failures mention wall clocks,
    so they never retry.

    Returns ``(results, failures)`` where ``results`` is the run the final
    verdict was computed from.
    """
    if check is None:
        check = check_against_baseline
    failures = check(results, baseline, wall_tolerance)
    attempt = 0
    while (
        failures
        and attempt < retries
        and all("wall-clock regression" in f for f in failures)
    ):
        attempt += 1
        log(
            f"wall envelope exceeded (attempt {attempt}/{retries}); "
            "re-timing the suite..."
        )
        results = rerun()
        failures = check(results, baseline, wall_tolerance)
    return results, failures


def render_results(results: dict[str, Any]) -> str:
    """Fixed-width summary table of a results document."""
    from repro.report.tables import format_table

    rows = []
    for name, entry in results["cases"].items():
        cost = entry["cost"]
        per_s = entry.get("rank_charges_per_s")
        rows.append(
            [
                name,
                f"{entry['wall_s']:.4f}",
                f"{entry['scalar_wall_s']:.4f}",
                f"{entry['speedup_vs_scalar']:.1f}x",
                f"{per_s:.3g}" if per_s is not None else "-",
                f"{cost['flops']:.6g}",
                f"{cost['words']:.6g}",
                f"{cost['mem_traffic']:.6g}",
                int(cost["supersteps"]),
            ]
        )
    return format_table(
        ["case", "wall s", "scalar s", "speedup", "charges/s", "F", "W", "Q", "S"],
        rows,
        title="accounting-engine benchmark (medians; oracle bit-identical)",
    )


def write_results(results: dict[str, Any], path: Path) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Path) -> dict[str, Any]:
    if not path.is_file():
        raise FileNotFoundError(
            f"no benchmark baseline at {path}; create one with `repro bench --out {path}`"
        )
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        raise BenchError(f"benchmark baseline {path} is unreadable: {exc}") from exc
    except ValueError as exc:
        raise BenchError(
            f"benchmark baseline {path} is not valid JSON ({exc}); "
            f"regenerate it with `repro bench --out {path}`"
        ) from exc
