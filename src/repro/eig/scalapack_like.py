"""ScaLAPACK-like baseline: direct one-stage tridiagonalization.

The first row of Table I.  A blocked Householder tridiagonalization on a
√p×√p grid (pdsytrd's structure): every column j requires a matrix–vector
product with the *trailing matrix* before the next column's reflector can be
formed, which is what pins this algorithm's costs at

    W = O(n²/√p),   Q = O(n³/p)  (when H < n²/p),   S = O(n log p).

Numerics: the actual sequential Householder tridiagonalization (exact
similarity transform), with per-column parallel charges — vector broadcast
and allreduce along grid rows/columns, trailing-matrix flops and streaming.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.kernels import sharded_axpy, sharded_dot, sharded_matvec, sharded_rank2_update
from repro.bsp.machine import BSPMachine
from repro.linalg.householder import householder_vector
from repro.linalg.tridiag import sturm_bisection_eigenvalues
from repro.util.validation import check_symmetric


def tridiagonalize_scalapack_like(
    machine: BSPMachine, a: np.ndarray, tag: str = "scalapack"
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce symmetric ``a`` to tridiagonal (d, e) with 2-D grid charges."""
    a = check_symmetric(a, "A").copy()
    n = a.shape[0]
    p = machine.p
    group = machine.world
    sqrt_p = max(1.0, np.sqrt(p))
    log_p = max(1.0, np.log2(p))

    with machine.span("tridiag", group=group):
        for j in range(n - 2):
            nbar = n - j - 1  # trailing dimension
            x = a[j + 1 :, j]
            v, tau, beta = householder_vector(x)
            # Column broadcast of v along the grid (row + column phases).
            per_rank = 2.0 * nbar / sqrt_p
            if p > 1:
                machine.charge_comm_batch(group, per_rank, per_rank)
            # w = τ·A v (trailing matvec): flops and streaming split over ranks.
            w = sharded_matvec(machine, group, a[j + 1 :, j + 1 :], v, scale=tau)
            # allreduce of the partial w segments.
            if p > 1:
                machine.charge_comm_batch(group, per_rank, per_rank)
            machine.superstep(group, 3)
            if tau != 0.0:
                # w ← w − ½τ(wᵀv)v, then the rank-2 symmetric update
                # A ← A − v wᵀ − w vᵀ; every flop routed through bsp.kernels.
                wv = sharded_dot(machine, group, w, v)
                sharded_axpy(machine, group, -0.5 * tau * wv, v, w)
                sharded_rank2_update(machine, group, a[j + 1 :, j + 1 :], v, w)
            a[j + 1, j] = beta
            a[j, j + 1] = beta
            a[j + 2 :, j] = 0.0
            a[j, j + 2 :] = 0.0
    machine.trace.record("scalapack_tridiag", group.ranks, tag=tag)
    return np.diag(a).copy(), np.diag(a, -1).copy()


def eigensolve_scalapack_like(machine: BSPMachine, a: np.ndarray, tag: str = "scalapack") -> np.ndarray:
    """Eigenvalues via direct tridiagonalization + Sturm bisection.

    The tridiagonal solve is charged as a parallel bisection (eigenvalue
    intervals split over ranks — embarrassingly parallel, negligible
    communication), matching ScaLAPACK's pdstebz stage.
    """
    with machine.span(tag):
        d, e = tridiagonalize_scalapack_like(machine, a, tag=tag)
        n = d.size
        evals = sturm_bisection_eigenvalues(d, e)
        with machine.span("bisection"):
            machine.charge_flops(machine.world, 64.0 * 5.0 * n * n / machine.p)
            machine.charge_comm_batch(machine.world, float(n), float(n))
            machine.superstep(machine.world, 2)
    return evals
