"""ELPA-like baseline: two-stage reduction (full → band → tridiagonal).

The second row of Table I.  ELPA's structure: a 2-D (c = 1, δ = 1/2)
full-to-band reduction to an intermediate band-width b, then Lang's parallel
band-to-tridiagonal algorithm — trading the direct method's vertical
communication for a second (cheap, banded) reduction stage:

    W = O(n²/√p),   S = O(n log p),   Q folded into F for b = √H.

Reuses this repo's Algorithm IV.1 implementation on a √p×√p×1 grid for the
first stage (with c = 1 and δ = 1/2 it *is* the classic 2-D algorithm) and
the 1-D h = 1 chase pipeline for the second.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bsp.machine import BSPMachine
from repro.dist.banded import DistBandMatrix
from repro.dist.grid import ProcGrid
from repro.eig.ca_sbr import band_to_tridiagonal_1d
from repro.eig.full_to_band import full_to_band_2p5d
from repro.linalg.tridiag import sturm_bisection_eigenvalues
from repro.util.validation import check_symmetric


def default_elpa_bandwidth(machine: BSPMachine, n: int) -> int:
    """ELPA's rule of thumb: b ≈ √H (band fits the per-rank cache), clamped
    to [2, n/4] and to at least one column block per grid row."""
    h_cache = machine.params.cache_words
    if math.isfinite(h_cache):
        b = int(np.sqrt(h_cache))
    else:
        q = max(1, int(np.sqrt(machine.p)))
        b = max(2, n // (4 * q))
    return int(np.clip(b, 2, max(2, n // 4)))


def eigensolve_elpa_like(
    machine: BSPMachine, a: np.ndarray, b: int | None = None, tag: str = "elpa"
) -> np.ndarray:
    """Eigenvalues via the two-stage (ELPA-style) pipeline."""
    a = check_symmetric(a, "A")
    n = a.shape[0]
    p = machine.p
    if b is None:
        b = default_elpa_bandwidth(machine, n)
    if not 1 <= b < n:
        raise ValueError(f"band-width must be in [1, n-1], got {b}")

    with machine.span(tag):
        # Stage 1: 2-D full-to-band (c = 1 grid).
        q = max(1, int(np.sqrt(p)))
        grid = ProcGrid(machine, (q, q, 1), machine.world.take(q * q))
        banded = full_to_band_2p5d(machine, grid, a, b, tag=f"{tag}:f2b")

        # Stage 2: Lang's band-to-tridiagonal on the full machine.
        band = DistBandMatrix(machine, banded, b, machine.world)
        tri = band_to_tridiagonal_1d(machine, band, tag=f"{tag}:lang")

        # Tridiagonal eigenvalues (parallel bisection, as in the other solvers).
        d = np.diag(tri.data).copy()
        e = np.diag(tri.data, -1).copy()
        evals = sturm_bisection_eigenvalues(d, e)
        with machine.span("bisection"):
            machine.charge_flops(machine.world, 64.0 * 5.0 * n * n / p)
            machine.charge_comm_batch(machine.world, float(n), float(n))
            machine.superstep(machine.world, 2)
    machine.trace.record("elpa_like", machine.world.ranks, tag=tag)
    return evals
