"""Algorithm IV.3: the complete 2.5D symmetric eigensolver.

Pipeline (Theorem IV.4):

1. **2.5D full-to-band** to b = n / max(p^{2−3δ}, log p)  (Algorithm IV.1);
2. **O(log p) 2.5D band-to-band stages**, each halving the band-width
   (k = 2) and shrinking the active processor set by k^ζ, ζ = (1−δ)/δ —
   chosen so the per-stage horizontal cost n·b̄/p̄^δ stays constant;
3. **CA-SBR halvings** on p^δ ranks from n/p^δ down to n/p  (Lemma IV.2);
4. gather the narrow band on one rank and finish sequentially
   (band → tridiagonal → Sturm bisection).

Total: F = O(n³/p), W = O(n²/p^δ), Q = O(n² log p/p^δ), S = O(p^δ log² p),
using M = O(n²/p^{2(1−δ)}) words per rank — the same communication costs as
2.5D LU/QR, a factor √c = p^{δ−1/2} below every 2-D eigensolver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bsp.counters import CostReport
from repro.bsp.group import RankGroup
from repro.bsp.machine import BSPMachine
from repro.dist.banded import DistBandMatrix
from repro.dist.grid import ProcGrid, factor_2p5d
from repro.eig.band_to_band import band_to_band_2p5d
from repro.eig.ca_sbr import ca_sbr_reduce
from repro.eig.full_to_band import full_to_band_2p5d
from repro.faults.errors import UnrecoverableFault
from repro.faults.recovery import (
    Checkpoint,
    guard_band,
    guard_spectrum,
    guard_tridiagonal,
    run_stage,
)
from repro.linalg.band_tridiag import band_to_tridiagonal_storage, extract_band
from repro.linalg.tridiag import sturm_bisection_eigenvalues
from repro.model.tuning import replan_delta
from repro.util.intlog import next_power_of_two
from repro.util.validation import check_symmetric, frobenius_norm, reference_spectrum_error


def finish_sequential(
    machine: BSPMachine, band: DistBandMatrix, tag: str = "finish", root: int = 0
) -> np.ndarray:
    """Gather the narrow band on ``root`` and compute its eigenvalues there.

    Charges ``root`` the sequential band→tridiagonal work (O(n·b²) flops,
    O(n·b·log b) streaming) and the Sturm bisection (O(n²) per sweep).
    Under fault injection the gathered band and the extracted tridiagonal
    are both guarded (the gather may corrupt the live band — the caller's
    checkpoint restores it on retry).
    """
    n, b = band.n, band.b
    faulty = machine.faults.enabled
    with machine.span("finish"):
        if faulty:
            norm0 = frobenius_norm(band.data)  # before the (corruptible) gather
        data = band.gather(root, tag=f"{tag}:gather")
        if faulty:
            guard_band(machine, data, b, norm0, "finish:gather",
                       RankGroup((root,)))
        if b > 1:
            # Band-storage reduction: (b+2)·n working words on root instead
            # of the dense path's n².  Charges are unchanged (analytic).
            d, e = band_to_tridiagonal_storage(extract_band(data, b), b)
            machine.charge_flops(root, 8.0 * n * b * b)
            machine.mem_stream(root, float(n * b) * max(1.0, np.log2(max(2, b))))
        else:
            d = np.diag(data).copy()
            e = np.diag(data, -1).copy()
        if faulty:
            machine.faults.corrupt_output(d, "finish:tridiag")
            machine.faults.corrupt_output(e, "finish:tridiag")
            guard_tridiagonal(machine, d, e, norm0, root)
        evals = sturm_bisection_eigenvalues(d, e)
        machine.charge_flops(root, 64.0 * 5.0 * n * n)
        machine.mem_stream(root, 64.0 * 2.0 * n)
        machine.superstep(machine.world, 1)
    machine.trace.record("finish", (root,), tag=tag)
    return evals


@dataclass
class EigensolveResult:
    """Output of :func:`eigensolve_2p5d`: the spectrum plus cost breakdown."""

    eigenvalues: np.ndarray
    cost: CostReport
    delta: float
    replication: int  # c = p^{2δ−1}
    initial_bandwidth: int
    stages: list[tuple[str, CostReport]] = field(default_factory=list)
    #: structured descriptors aligned with ``stages`` (kind, n, b_in, b_out,
    #: k, p_active, delta) — what repro.metrics.attainment needs to evaluate
    #: the matching lemma/theorem cost expressions
    stage_meta: list[dict] = field(default_factory=list)

    def stage_summary(self) -> str:
        lines = [f"total: {self.cost.summary()}"]
        for name, rep in self.stages:
            lines.append(f"  {name}: {rep.summary()}")
        return "\n".join(lines)


def default_initial_bandwidth(n: int, p: int, delta: float) -> int:
    """The paper's choice b = n / max(p^{2−3δ}, log₂ p), rounded down to a
    power of two so the k = 2 halving stages divide evenly."""
    denom = max(p ** (2.0 - 3.0 * delta), np.log2(max(2, p)))
    b = int(np.clip(round(n / denom), 1, max(1, n // 2)))
    pow2 = next_power_of_two(b)
    return pow2 if pow2 == b else pow2 // 2


def eigensolve_2p5d(
    machine: BSPMachine,
    a: np.ndarray,
    delta: float = 0.5,
    b0: int | None = None,
    k: int = 2,
    collect_stages: bool = True,
    tag: str = "eig2p5d",
) -> EigensolveResult:
    """Compute all eigenvalues of symmetric ``a`` with Algorithm IV.3.

    ``delta`` ∈ [1/2, 2/3] selects the replication factor c = p^{2δ−1}
    (δ = 1/2: classic 2-D, c = 1; δ = 2/3: maximal replication c = p^{1/3});
    the machine's p is factored into the nearest realizable q×q×c grid.
    ``b0`` overrides the paper's initial band-width; ``k`` is the per-stage
    band-width ratio of the 2.5D band-to-band stages.
    """
    a = check_symmetric(a, "A")
    n = a.shape[0]
    p = machine.p
    if n < p:
        raise ValueError(f"the paper assumes n >= p (got n={n}, p={p})")
    q, c = factor_2p5d(p, delta)
    grid = ProcGrid(machine, (q, q, c), machine.world.take(q * q * c))
    # Effective δ of the realized grid (p may not admit the exact target).
    delta_eff = 0.5 if p == 1 else 0.5 * (1.0 + np.log(c) / np.log(p))

    b = b0 if b0 is not None else default_initial_bandwidth(n, p, delta_eff)
    if not 1 <= b < n:
        raise ValueError(f"initial band-width must be in [1, n-1], got {b}")
    stages: list[tuple[str, CostReport]] = []
    stage_meta: list[dict] = []
    mark = machine.cost()

    def snapshot(name: str, **meta: object) -> None:
        nonlocal mark
        if collect_stages:
            now = machine.cost()
            stages.append((name, now - mark))
            stage_meta.append({"name": name, **meta})
            mark = now

    # Fault tolerance: with a live injector, each stage runs under
    # run_stage (checkpoint -> guard -> bounded retries; on a rank loss the
    # grid shrinks to the survivors and delta is re-planned).  With faults
    # off every branch below is the plain call — charge-for-charge
    # identical to a machine without the fault layer.
    ft = machine.faults.enabled
    norm_a = frobenius_norm(a) if ft else 0.0

    with machine.span(tag):
        # Stage 1: full → band.
        if ft:
            def run_f2b() -> np.ndarray:
                return full_to_band_2p5d(machine, grid, a, b, tag=f"{tag}:f2b")

            def loss_f2b(survivors: RankGroup) -> None:
                nonlocal grid, delta_eff
                p_bar = survivors.size
                d_new = replan_delta(n, p_bar, machine.params)
                q2, c2 = factor_2p5d(p_bar, d_new)
                grid = ProcGrid(machine, (q2, q2, c2), survivors.take(q2 * q2 * c2))
                delta_eff = 0.5 if p_bar == 1 else 0.5 * (1.0 + np.log(c2) / np.log(p_bar))

            ckpt = Checkpoint(machine, "full_to_band", {"A": a}, grid.group())
            banded = run_stage(
                machine, "full_to_band", run_f2b,
                checkpoint=ckpt,
                guard=lambda out: guard_band(
                    machine, out, b, norm_a, "full_to_band", grid.group()),
                on_rank_loss=loss_f2b,
            )
        else:
            banded = full_to_band_2p5d(machine, grid, a, b, tag=f"{tag}:f2b")
        snapshot(
            f"full_to_band(b={b})",
            kind="full_to_band",
            n=n,
            b_in=n,
            b_out=b,
            p_active=grid.group().size,
            delta=delta_eff,
        )
        world = machine.faults.live_group(machine.world)
        if world is None:
            raise UnrecoverableFault("no surviving ranks", span=tag)
        p_live = world.size
        band = DistBandMatrix(machine, banded, b, world)

        # Stage 2: 2.5D band-to-band halvings down to ~n/p^δ, shrinking the
        # active group by k^ζ each stage (ζ = (1−δ)/δ).
        zeta = (1.0 - delta_eff) / delta_eff
        target2 = max(2, int(np.ceil(n / p_live**delta_eff)))
        active = world
        stage_idx = 0
        while band.b > target2 and band.b % k == 0 and band.b >= 2:
            if stage_idx > 0:
                new_size = max(1, int(round(active.size / k**zeta)))
                if new_size < active.size:
                    active = active.take(new_size)
                    with machine.span("shrink", group=active):
                        band = band.redistribute(active, tag=f"{tag}:shrink{stage_idx}")
            if ft:
                idx = stage_idx

                def run_b2b() -> DistBandMatrix:
                    return band_to_band_2p5d(machine, band, k=k, tag=f"{tag}:b2b{idx}")

                def loss_b2b(survivors: RankGroup) -> None:
                    nonlocal band, active
                    active = survivors.take(min(active.size, survivors.size))
                    band = band.redistribute(active, tag=f"{tag}:b2b{idx}:failover")

                ckpt = Checkpoint(machine, f"band_to_band[{idx}]",
                                  {"band": band.data}, active)
                band = run_stage(
                    machine, f"band_to_band[{idx}]", run_b2b,
                    checkpoint=ckpt,
                    guard=lambda out: guard_band(
                        machine, out.data, out.b, norm_a,
                        f"band_to_band[{idx}]", out.group),
                    on_rank_loss=loss_b2b,
                )
            else:
                band = band_to_band_2p5d(machine, band, k=k, tag=f"{tag}:b2b{stage_idx}")
            snapshot(
                f"band_to_band(b={band.b * k}->{band.b}, p={active.size})",
                kind="band_to_band",
                n=n,
                b_in=band.b * k,
                b_out=band.b,
                k=k,
                p_active=active.size,
                delta=delta_eff,
            )
            stage_idx += 1

        # Stage 3: CA-SBR halvings on p^δ ranks down to ~n/p.
        target3 = max(1, n // p_live)
        if band.b > target3:
            small = world.take(max(1, int(round(p_live**delta_eff))))
            if small.size < band.group.size:
                with machine.span("shrink", group=small):
                    band = band.redistribute(small, tag=f"{tag}:shrink_sbr")
            start_b = band.b
            if ft:
                def run_sbr() -> DistBandMatrix:
                    return ca_sbr_reduce(machine, band, target3, tag=f"{tag}:sbr")

                def loss_sbr(survivors: RankGroup) -> None:
                    nonlocal band, small
                    small = survivors.take(min(small.size, survivors.size))
                    band = band.redistribute(small, tag=f"{tag}:sbr:failover")

                ckpt = Checkpoint(machine, "ca_sbr", {"band": band.data}, small)
                band = run_stage(
                    machine, "ca_sbr", run_sbr,
                    checkpoint=ckpt,
                    guard=lambda out: guard_band(
                        machine, out.data, out.b, norm_a, "ca_sbr", out.group),
                    on_rank_loss=loss_sbr,
                )
            else:
                band = ca_sbr_reduce(machine, band, target3, tag=f"{tag}:sbr")
            snapshot(
                f"ca_sbr(b={start_b}->{band.b}, p={small.size})",
                kind="ca_sbr",
                n=n,
                b_in=start_b,
                b_out=band.b,
                p_active=small.size,
                delta=delta_eff,
            )

        # Stage 4: sequential finish.
        if ft:
            root = world.root

            def run_finish() -> np.ndarray:
                return finish_sequential(machine, band, tag=tag, root=root)

            def loss_finish(survivors: RankGroup) -> None:
                nonlocal band, root
                regrouped = survivors.take(min(band.group.size, survivors.size))
                band = band.redistribute(regrouped, tag=f"{tag}:finish:failover")
                root = regrouped.root

            ckpt = Checkpoint(machine, "finish", {"band": band.data}, band.group)
            evals = run_stage(
                machine, "finish", run_finish,
                checkpoint=ckpt,
                guard=lambda out: guard_spectrum(machine, out, n, root),
                on_rank_loss=loss_finish,
            )
        else:
            evals = finish_sequential(machine, band, tag=tag)
        snapshot(
            "finish",
            kind="finish",
            n=n,
            b_in=band.b,
            b_out=1,
            p_active=1,
            delta=delta_eff,
        )

    return EigensolveResult(
        eigenvalues=evals,
        cost=machine.cost(),
        delta=delta_eff,
        replication=c,
        initial_bandwidth=b,
        stages=stages,
        stage_meta=stage_meta,
    )


def eigensolve_2p5d_check(machine: BSPMachine, a: np.ndarray, **kwargs) -> tuple[EigensolveResult, float]:
    """Run the solver and return (result, max |λ − λ_numpy|) — test helper."""
    res = eigensolve_2p5d(machine, a, **kwargs)
    return res, reference_spectrum_error(a, res.eigenvalues)
