"""Algorithm IV.1: 2.5D full-to-band reduction.

Reduces a dense symmetric n×n matrix to band-width ``b`` with the same
eigenvalues, on a q×q×c grid (q = p^{1−δ}, c = p^{2δ−1}), using

* **replication** — A (and the aggregated update panels U, V) live on every
  layer, cutting the per-multiplication communication to O(·/p^δ)
  (Lemma III.3), and
* **left-looking aggregation** — trailing updates are deferred: only the
  next panel is updated (line 5), using the rank-2m form of Eqn IV.2, so
  the O(n)×O(n) trailing matrix is *never* rewritten.

Per panel: update the panel (two streaming multiplications), rect-QR of the
sub-diagonal block on the Π[:, 1:z, :] sub-grid (Theorem III.6), form W and
V₁ (five streaming + four small multiplications, lines 8–9), replicate the
new U₁, V₁ panels, and append them to the aggregate.

Measured costs (Lemma IV.1):  F = O(n³/p),  W = O(n²/p^δ),
S = O(p^δ log² p),  M = O(n²/p^{2(1−δ)}), plus the conditional vertical term
O(ν·(n/b)·n²/p^{2(1−δ)}) when the replicated data exceeds cache — which the
machine's cache model produces automatically.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.kernels import qr_flops
from repro.bsp.machine import BSPMachine
from repro.blocks.matmul import carma_matmul
from repro.blocks.rect_qr import rect_qr
from repro.blocks.streaming import streaming_matmul
from repro.dist.grid import ProcGrid
from repro.linalg.householder import compact_wy_qr_general
from repro.util.validation import check_symmetric


def grid_delta(grid: ProcGrid) -> float:
    """Recover δ from a q×q×c grid: c = p^{2δ−1} (δ = 1/2 when p = 1)."""
    p = grid.size
    if p == 1:
        return 0.5
    return 0.5 * (1.0 + np.log(grid.shape[2]) / np.log(p))


def full_to_band_2p5d(
    machine: BSPMachine,
    grid: ProcGrid,
    a: np.ndarray,
    b: int,
    w: int | None = None,
    tag: str = "f2b",
) -> np.ndarray:
    """Reduce symmetric ``a`` to band-width ``b``; returns the banded matrix.

    ``grid`` must be q×q×c.  ``w`` is the streaming pipeline depth of
    Algorithm III.1 (defaults to the paper's max(1, b·p^{2−3δ}/n)).
    """
    a = check_symmetric(a, "A")
    n = a.shape[0]
    if grid.ndim != 3 or grid.shape[0] != grid.shape[1]:
        raise ValueError("full_to_band_2p5d requires a q×q×c grid")
    if not 1 <= b < n:
        raise ValueError(f"band-width must be in [1, n-1], got {b}")
    p = grid.size
    q = grid.shape[0]
    delta = grid_delta(grid)
    if w is None:
        w = max(1, int(round(b * p ** (2 - 3 * delta) / n)))

    group = grid.group()
    # Width of the QR sub-grid Π[:, 1:z, :] (paper: z = (b·p^δ/n)^{(1−δ)/δ}).
    pdelta = p**delta
    z = int(np.clip(round((b * pdelta / n) ** ((1 - delta) / delta)), 1, q))
    qr_group = grid.subgrid(slice(0, q), slice(0, z), slice(0, grid.shape[2])).group()

    with machine.span("full_to_band", group=group):
        # Initial replication of A onto every layer: one allgather over fibers,
        # after which each rank holds its n²/q² layer-local share (Lemma IV.1).
        share = float(n * n) / (q * q)
        with machine.span("replicate", group=group):
            if p > 1:
                machine.charge_comm_batch(group, share, share)
                machine.superstep(group, 1)
        machine.note_memory(group, 3 * share)  # A + U + V replicas
        machine.trace.record("replicate_A", group.ranks, words=share * p, tag=tag)

        bmat = np.zeros((n, n))
        # Aggregated update panels U, V, written in place into preallocated
        # buffers; the first m_cols columns are live.  (Re-stacking the whole
        # aggregate every panel was O(n³/b) pure copying at scale.)
        u_buf = np.zeros((n, n))
        v_buf = np.zeros((n, n))
        m_cols = 0

        c0 = 0
        while n - c0 > b:  # certify: trips(n / b)
            nbar = n - c0
            m_agg = m_cols
            u_glob = u_buf[:, :m_cols]
            v_glob = v_buf[:, :m_cols]

            # ---- line 5: left-looking update of the current panel ------------
            panel = a[c0:, c0 : c0 + b].copy()
            if m_agg:
                with machine.span("panel_update", group=group):
                    panel += streaming_matmul(
                        machine, grid, u_glob[c0:, :], v_glob[c0 : c0 + b, :].T, w, a_key="Uagg",
                        tag=f"{tag}:panel_upd",
                    )
                    panel += streaming_matmul(
                        machine, grid, v_glob[c0:, :], u_glob[c0 : c0 + b, :].T, w, a_key="Vagg",
                        tag=f"{tag}:panel_upd",
                    )
            a11 = panel[:b, :]
            a21 = panel[b:, :]

            # ---- lines 6–7: QR of the sub-diagonal panel ----------------------
            with machine.span("panel_qr", group=qr_group):
                if a21.shape[0] >= a21.shape[1]:
                    u1, t1, r1 = rect_qr(machine, qr_group, a21, delta=delta, tag=f"{tag}:qr@{c0}")
                else:
                    # Ragged last panel (rows < b): a single rank factors it.
                    u1, t1, r1 = compact_wy_qr_general(a21)
                    machine.charge_flops(qr_group[0], qr_flops(max(a21.shape), min(a21.shape)))
                    machine.superstep(qr_group, 1)

            # ---- line 8: W = A22·U1 + U2(V2ᵀU1) + V2(U2ᵀU1) -------------------
            a22 = a[c0 + b :, c0 + b :]
            with machine.span("form_W", group=group):
                wmat = streaming_matmul(machine, grid, a22, u1, w, a_key="A", tag=f"{tag}:W")
                if m_agg:
                    x1 = streaming_matmul(
                        machine, grid, v_glob[c0 + b :, :].T, u1, w, a_key="Vagg", tag=f"{tag}:W"
                    )
                    wmat += streaming_matmul(
                        machine, grid, u_glob[c0 + b :, :], x1, w, a_key="Uagg", tag=f"{tag}:W"
                    )
                    x2 = streaming_matmul(
                        machine, grid, u_glob[c0 + b :, :].T, u1, w, a_key="Uagg", tag=f"{tag}:W"
                    )
                    wmat += streaming_matmul(
                        machine, grid, v_glob[c0 + b :, :], x2, w, a_key="Vagg", tag=f"{tag}:W"
                    )

            # ---- line 9: V1 = ½U1(Tᵀ(U1ᵀ(W T))) − W T --------------------------
            with machine.span("form_V1", group=group):
                y = carma_matmul(machine, group, wmat, t1, charge_redistribution=False, tag=f"{tag}:V1")
                z1 = carma_matmul(machine, group, u1.T, y, charge_redistribution=False, tag=f"{tag}:V1")
                z2 = carma_matmul(machine, group, t1.T, z1, charge_redistribution=False, tag=f"{tag}:V1")
                z3 = carma_matmul(machine, group, u1, z2, charge_redistribution=False, tag=f"{tag}:V1")
                v1 = 0.5 * z3 - y
                machine.charge_flops(group, float(v1.size) / p)

            # ---- line 10: replicate U1 and V1 over all layers ------------------
            rep = float(u1.size + v1.size) / (q * q)
            with machine.span("replicate_UV", group=group):
                machine.charge_comm_batch(group, rep, rep)
                machine.superstep(group, 1)
            machine.trace.record("replicate_UV", group.ranks, words=rep * p, tag=tag)

            # ---- assemble the banded output ------------------------------------
            bmat[c0 : c0 + b, c0 : c0 + b] = (a11 + a11.T) / 2.0
            rrows = r1.shape[0]
            bmat[c0 + b : c0 + b + rrows, c0 : c0 + b] = r1
            bmat[c0 : c0 + b, c0 + b : c0 + b + rrows] = r1.T

            # ---- append the new panels to the aggregates -----------------------
            width = u1.shape[1]
            u_buf[c0 + b :, m_cols : m_cols + width] = u1
            v_buf[c0 + b :, m_cols : m_cols + width] = v1
            m_cols += width
            machine.note_memory(group, 3 * share + 2.0 * n * m_cols / (q * q))

            c0 += b

        # ---- base case (lines 1–2): apply the aggregate to the tail block -----
        tail = a[c0:, c0:].copy()
        if m_cols:
            with machine.span("tail", group=group):
                tail += streaming_matmul(
                    machine, grid, u_buf[c0:, :m_cols], v_buf[c0:, :m_cols].T, w, a_key="Uagg", tag=f"{tag}:tail"
                )
                tail += streaming_matmul(
                    machine, grid, v_buf[c0:, :m_cols], u_buf[c0:, :m_cols].T, w, a_key="Vagg", tag=f"{tag}:tail"
                )
        bmat[c0:, c0:] = (tail + tail.T) / 2.0
        machine.trace.record("full_to_band", group.ranks, tag=tag)
        return (bmat + bmat.T) / 2.0
