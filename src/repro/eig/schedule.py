"""Bulge-chase pipeline schedule of Algorithm IV.2 (Figure 2).

Panel ``i``'s elimination starts as soon as bulge ``i−1`` has been chased
twice, so chase ``(i, j)`` executes in pipeline *phase* ``j + 2(i−1)``, and
all steps of equal phase run concurrently on their disjoint processor
groups.  Figure 2 of the paper shows phases 5 and 6 for k = 2:
``{(3,1), (2,3), (1,5)}`` then ``{(3,2), (2,4), (1,6)}``.

This module derives the schedule from the shared
:func:`repro.linalg.sbr.chase_steps` enumeration (so the diagram is provably
the schedule the reduction actually executes) and computes the quantities
Lemma IV.3's proof reasons about: number of phases, maximum concurrency, and
which processor group Π̂_j executes each step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.sbr import ChaseStep, chase_steps


@dataclass(frozen=True)
class PipelinePhase:
    """All chase steps executing concurrently in one pipeline phase."""

    phase: int
    steps: tuple[ChaseStep, ...]

    @property
    def ij_set(self) -> set[tuple[int, int]]:
        """The (panel, chase) pairs of this phase — Figure 2's labels."""
        return {(s.i, s.j) for s in self.steps}

    @property
    def concurrency(self) -> int:
        return len(self.steps)


def pipeline_schedule(n: int, b: int, h: int) -> list[PipelinePhase]:
    """The full pipeline: one entry per phase, in execution order."""
    buckets: dict[int, list[ChaseStep]] = {}
    for s in chase_steps(n, b, h):
        buckets.setdefault(s.phase, []).append(s)
    return [
        PipelinePhase(phase=ph, steps=tuple(sorted(buckets[ph], key=lambda s: s.i)))
        for ph in sorted(buckets)
    ]


def chase_step_arrays(n: int, b: int, h: int) -> dict[str, np.ndarray]:
    """Vectorized view of :func:`repro.linalg.sbr.chase_steps`.

    Returns one int64 array per :class:`~repro.linalg.sbr.ChaseStep` field
    (plus ``phase``), in the same panel-major order — field ``f`` of step
    ``s`` is ``arrays[f][s]``.  The batched chase engines charge whole
    schedules from these arrays instead of looping over step objects;
    equality with the per-step enumeration is pinned by tests.
    """
    if not 1 <= h < b < n:
        raise ValueError(f"need 1 <= h < b < n, got h={h}, b={b}, n={n}")
    n_panels = -(-n // h) - 1  # ceil(n/h) − 1
    i_panel = np.arange(1, n_panels + 1, dtype=np.int64)
    # Chases per panel: the j ≥ 1 with i·h + (j−1)·b < n.
    counts = -(-(n - i_panel * h) // b)
    total = int(counts.sum())
    i_arr = np.repeat(i_panel, counts)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    j_arr = np.arange(total, dtype=np.int64) - np.repeat(starts, counts) + 1
    oqr_r = i_arr * h + (j_arr - 1) * b
    oqr_c = np.where(j_arr == 1, oqr_r - h, oqr_r - b)
    nr = np.minimum(n - oqr_r, b)
    ncols = np.minimum(h, n - oqr_c)
    oup_c = oqr_c + h
    nc = np.maximum(0, np.minimum(n - oup_c, h + 3 * b))
    ov = oqr_r - oup_c
    phase = j_arr + 2 * (i_arr - 1)
    return {
        "i": i_arr, "j": j_arr, "oqr_r": oqr_r, "oqr_c": oqr_c, "nr": nr,
        "ncols": ncols, "oup_c": oup_c, "nc": nc, "ov": ov, "phase": phase,
    }


def wave_sizes(n: int, b: int, h: int) -> np.ndarray:
    """Concurrent step count of each pipeline phase (phases 1..max, dense).

    ``wave_sizes(...)[ph-1]`` is the width of Figure 2's row ``ph`` — the
    number of disjoint-group chase steps the pipeline runs at once.
    """
    phase = chase_step_arrays(n, b, h)["phase"]
    return np.bincount(phase)[1:]


def group_of_step(step: ChaseStep, n: int, b: int) -> int:
    """Index of the processor group Π̂_j executing a chase step.

    The paper assigns chase j of every bulge to group Π̂_j (line 5); groups
    are indexed 0-based here and wrap if a chase chain is longer than the
    ⌈n/b⌉ available groups (only possible for ragged trailing chains).

    The group count is ⌈n/b⌉, not ⌊n/b⌋: when b does not divide n, the
    ragged trailing panel adds one more chase to each chain, and flooring
    made two *same-phase* steps wrap onto one group — serializing steps the
    schedule proves disjoint (and double-charging that group's ranks).
    """
    n_groups = max(1, -(-n // b))
    return (step.j - 1) % n_groups


def max_concurrency(n: int, b: int, h: int) -> int:
    """Peak number of simultaneously active chase steps."""
    sched = pipeline_schedule(n, b, h)
    return max((ph.concurrency for ph in sched), default=0)


def schedule_checks(n: int, b: int, h: int) -> dict[str, bool]:
    """Structural invariants of the schedule (used by tests and benches).

    * steps of one phase touch pairwise-disjoint row windows (they can run
      concurrently without conflicting updates);
    * within a panel, chase j+1 starts exactly where chase j's QR rows began
      (the bulge-handoff invariant derived in :mod:`repro.linalg.sbr`);
    * steps of one phase map to pairwise-distinct processor groups under
      :func:`group_of_step` (no same-phase collision — the invariant the
      ⌈n/b⌉ group count exists to preserve).
    """
    sched = pipeline_schedule(n, b, h)
    disjoint = True
    for ph in sched:
        # Concurrent QR blocks must not overlap (row ranges; columns follow).
        spans = sorted((s.oqr_r, s.oqr_r + s.nr) for s in ph.steps)
        for a, c in zip(spans, spans[1:]):
            if c[0] < a[1]:
                disjoint = False
    handoff = True
    by_panel: dict[int, list[ChaseStep]] = {}
    for s in chase_steps(n, b, h):
        by_panel.setdefault(s.i, []).append(s)
    for steps in by_panel.values():
        steps.sort(key=lambda s: s.j)
        for s0, s1 in zip(steps, steps[1:]):
            if s1.oqr_c != s0.oqr_r:
                handoff = False
    groups_ok = True
    for ph in sched:
        gids = [group_of_step(s, n, b) for s in ph.steps]
        if len(set(gids)) != len(gids):
            groups_ok = False
    return {"phases_disjoint": disjoint, "bulge_handoff": handoff, "groups_disjoint": groups_ok}
