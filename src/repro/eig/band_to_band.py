"""Algorithm IV.2: 2.5D band-to-band reduction.

Reduces a symmetric band-``b`` matrix to band-width ``h = b/k`` by pipelined
bulge chasing, where — unlike CA-SBR, which gives each processor a set of
bulge chases — every QR factorization and trailing update is itself executed
by a *processor group* ``Π̂_j`` of ``p̂ = p·b/n`` ranks (line 5: group j
performs chase j of every bulge, as soon as group j−1 has finished chase
j−1 of the previous bulge).

Execution here follows the panel-major linearization of the pipeline (a
valid dependency order — see :mod:`repro.eig.schedule` for the concurrency
structure); each step charges only its own group's ranks, so the aggregated
BSP cost reflects the pipeline's concurrency exactly.

Measured costs (Lemma IV.3, k = b/h):
F = O(n²b/p), W = O(n^{1+δ} b^{1−δ}/p^δ), S = O(k^δ n^{1−δ} p^δ/b^{1−δ} ·log p).
"""

from __future__ import annotations

import os

import numpy as np

from repro.bsp.group import RankGroup
from repro.bsp.kernels import qr_flops
from repro.bsp.machine import BSPMachine
from repro.blocks.matmul import carma_matmul
from repro.blocks.rect_qr import rect_qr
from repro.dist.banded import DistBandMatrix
from repro.eig.schedule import group_of_step
from repro.linalg.sbr import ChaseStep, chase_steps
from repro.linalg.householder import compact_wy_qr_general


def _charge_chase_qr(machine: BSPMachine, group: RankGroup, block: np.ndarray, tag: str) -> None:
    """Charge one chase block's QR on a group (rect-QR, or local when degenerate)."""
    m, ncols = block.shape
    if m >= ncols and group.size > 1:
        rect_qr(machine, group, block, charge_redistribution=False, tag=tag)
    else:
        machine.charge_flops(group[0], qr_flops(max(m, ncols), min(m, ncols)))
        machine.superstep(group, 1)


def apply_chase_parallel(
    machine: BSPMachine,
    band: DistBandMatrix,
    step: ChaseStep,
    qr_group: RankGroup,
    upd_group: RankGroup,
    tag: str = "b2b",
) -> None:
    """Execute one chase step (lines 16–22) with group-parallel kernels.

    Numerically identical to :func:`repro.linalg.sbr.apply_chase_step`, but
    the QR runs on ``qr_group`` (Π̂_j[1 : ph/n]) and the V/update products on
    ``upd_group`` (Π̂_j), with window fetch/store charged against the band's
    column owners.

    The band's *values* evolve via one direct compact-WY factorization and
    plain dense products per step — the same arithmetic the batched engine
    (:mod:`repro.eig.chase_batch`) performs — while the parallel kernels run
    alongside purely for their charges, traces, spans and fault hooks (their
    costs depend only on shapes and groups, their numerical results only in
    summation order).  Sharing one data evolution keeps window nonzero
    counts — the only value-dependent charges — identical across engines,
    which is what makes the two cost reports byte-equal at every size.
    """
    rows = slice(step.oqr_r, step.oqr_r + step.nr)
    cols = slice(step.oqr_c, step.oqr_c + step.ncols)
    with machine.span("chase_qr", group=qr_group):
        block = band.fetch_window(rows, cols, qr_group, tag=f"{tag}:qr_fetch")
        u, t, r = compact_wy_qr_general(block)
        _charge_chase_qr(machine, qr_group, block, tag=f"{tag}:qr")
        out = np.zeros_like(block)
        out[: r.shape[0], :] = r
        band.store_window(rows, cols, out, qr_group, tag=f"{tag}:qr_store")

    if step.nc <= 0:
        return
    up = slice(step.oup_c, step.oup_c + step.nc)
    with machine.span("chase_update", group=upd_group):
        bup = band.fetch_window(up, rows, upd_group, tag=f"{tag}:upd_fetch")
        # Lines 19–20: W = B[Iup, Iqr]·U·T;  V = −W + ½U(Tᵀ(Uᵀ W[Iv])).  These
        # products are charged through CARMA (Lemma III.2), exactly as Lemma
        # IV.3's proof invokes it — for these outer shapes CARMA splits both
        # operands, beating any pattern that replicates U to the whole group.
        ut = u @ t  # cost: free(charged via the carma call on the next line)
        carma_matmul(machine, upd_group, u, t, charge_redistribution=False, tag=f"{tag}:UT")
        w = bup @ ut  # cost: free(charged via the carma call on the next line)
        carma_matmul(machine, upd_group, bup, ut, charge_redistribution=False, tag=f"{tag}:W")
        v = -w
        vrows = slice(step.ov, step.ov + step.nr)
        inner = u.T @ w[vrows, :]  # cost: free(charged via the carma call on the next line)
        carma_matmul(machine, upd_group, u.T, w[vrows, :], charge_redistribution=False, tag=f"{tag}:V")
        v[vrows, :] += 0.5 * (u @ (t.T @ inner))  # cost: free(charged via charge_flops on the next line)
        machine.charge_flops(upd_group, 2.0 * u.size * t.shape[0] / upd_group.size)
        # Lines 21–22: two-sided rank-2h update of the window (both triangles;
        # the overlap block B[Iqr, Iqr] accumulates UVᵀ AND VUᵀ).
        uvt = u @ v.T  # cost: free(charged via the carma call on the next line)
        carma_matmul(machine, upd_group, u, v.T, charge_redistribution=False, tag=f"{tag}:UVt")
        band.data[rows, up] += uvt
        band.data[up, rows] += uvt.T
        band.charge_store(rows, up, upd_group, tag=f"{tag}:upd_store")


def resolve_chase_engine(machine: BSPMachine, chase_engine: str | None = None) -> str:
    """Pick "batched" or "perstep" for the chase loops.

    Explicit argument wins, then the ``REPRO_CHASE_ENGINE`` environment
    variable, then "auto".  "auto" selects the batched engine exactly when
    :func:`repro.bsp.batch.batched_charging_ok` holds — observed runs
    (trace, spans, metrics, fault injection, verifying machines) always get
    the per-step path so their artifacts are unchanged.
    """
    from repro.bsp.batch import batched_charging_ok

    engine = chase_engine or os.environ.get("REPRO_CHASE_ENGINE") or "auto"
    if engine not in ("auto", "batched", "perstep"):
        raise ValueError(f"unknown chase engine {engine!r}")
    if engine == "auto":
        return "batched" if batched_charging_ok(machine) else "perstep"
    return engine


def band_to_band_2p5d(
    machine: BSPMachine,
    band: DistBandMatrix,
    k: int = 2,
    tag: str = "b2b",
    chase_engine: str | None = None,
) -> DistBandMatrix:
    """Reduce a distributed band-``b`` matrix to band-width ``b/k``.

    Returns a new :class:`DistBandMatrix` with band-width ``h = b/k`` over
    the same group.  ``k`` must divide ``b`` (the paper's b mod k ≡ 0).

    ``chase_engine`` selects per-step or batched charging (see
    :func:`resolve_chase_engine`); both produce bit-identical cost reports.
    """
    b = band.b
    n = band.n
    if k < 2:
        raise ValueError("k must be >= 2")
    if b % k:
        raise ValueError(f"k={k} must divide the band-width b={b}")
    h = b // k
    group = band.group
    p = group.size
    # ⌈n/b⌉ groups Π̂_j of p̂ = p·b/n ranks each (at least one rank per group;
    # ceil so a ragged final panel gets its own group, matching group_of_step).
    n_groups = max(1, min(p, -(-n // b)))
    subgroups = group.split(n_groups)
    # QR sub-groups: Π̂_j[1 : p·h/n] (line 16).
    qr_size = max(1, (p * h) // n)

    if resolve_chase_engine(machine, chase_engine) == "batched":
        from repro.eig.chase_batch import run_chases_batched

        run_chases_batched(machine, band, h, subgroups, qr_size, n_groups)
    else:
        with machine.span("band_to_band", group=group):
            for step in chase_steps(n, b, h):
                gidx = group_of_step(step, n, b) % n_groups
                upd_group = subgroups[gidx]
                qr_group = upd_group.take(min(qr_size, upd_group.size))
                apply_chase_parallel(machine, band, step, qr_group, upd_group, tag=tag)

    band.data[:] = (band.data + band.data.T) / 2.0
    machine.trace.record("band_to_band", group.ranks, tag=tag)
    return DistBandMatrix(machine, band.data, h, group)
