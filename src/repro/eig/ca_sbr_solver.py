"""CA-SBR baseline eigensolver (third row of Table I).

Ballard–Demmel–Knight's recipe: a 2-D (c = 1) full-to-band reduction
followed by O(log n) CA-SBR band-halving steps down to band-width ~n/p,
then a sequential finish on the gathered narrow band:

    W = O(n²/√p),  Q = O(n² log n/√p),  S = O(√p (log²p + log n)).

The successive halvings are where the log n factors of Table I's CA-SBR row
come from — each of the log(bp/n) stages re-streams the band.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.machine import BSPMachine
from repro.dist.banded import DistBandMatrix
from repro.dist.grid import ProcGrid
from repro.eig.ca_sbr import ca_sbr_reduce
from repro.eig.driver import finish_sequential
from repro.eig.full_to_band import full_to_band_2p5d
from repro.util.validation import check_symmetric


def eigensolve_ca_sbr(
    machine: BSPMachine, a: np.ndarray, b: int | None = None, tag: str = "ca_sbr"
) -> np.ndarray:
    """Eigenvalues via 2-D full-to-band + CA-SBR successive halving."""
    a = check_symmetric(a, "A")
    n = a.shape[0]
    p = machine.p
    q = max(1, int(np.sqrt(p)))
    if b is None:
        b = max(2, n // (2 * q))
    if not 1 <= b < n:
        raise ValueError(f"band-width must be in [1, n-1], got {b}")

    with machine.span(tag):
        grid = ProcGrid(machine, (q, q, 1), machine.world.take(q * q))
        banded = full_to_band_2p5d(machine, grid, a, b, tag=f"{tag}:f2b")

        band = DistBandMatrix(machine, banded, b, machine.world)
        target = max(1, n // p)
        if band.b > target:
            band = ca_sbr_reduce(machine, band, target, tag=f"{tag}:halve")

        return finish_sequential(machine, band, tag=tag)
