"""Symmetric eigensolvers (Section IV) and the Table I baselines.

* :func:`full_to_band_2p5d` — Algorithm IV.1: dense → band-width b with
  replicated storage and left-looking aggregated updates.
* :func:`band_to_band_2p5d` — Algorithm IV.2: pipelined bulge chasing with
  processor groups inside each chase.
* :func:`ca_sbr_halve` — the CA-SBR band-halving step (Lemma IV.2 baseline,
  stage 3 of the complete solver).
* :func:`eigensolve_2p5d` — Algorithm IV.3: the complete 2.5D eigensolver.
* :func:`eigensolve_scalapack_like`, :func:`eigensolve_elpa_like`,
  :func:`eigensolve_ca_sbr` — the other three rows of Table I.
* :mod:`repro.eig.schedule` — the bulge-chase pipeline schedule (Figure 2).
"""

from repro.eig.full_to_band import full_to_band_2p5d
from repro.eig.band_to_band import band_to_band_2p5d
from repro.eig.ca_sbr import ca_sbr_halve, band_to_tridiagonal_1d
from repro.eig.driver import eigensolve_2p5d, EigensolveResult
from repro.eig.scalapack_like import eigensolve_scalapack_like
from repro.eig.elpa_like import eigensolve_elpa_like
from repro.eig.ca_sbr_solver import eigensolve_ca_sbr

__all__ = [
    "full_to_band_2p5d",
    "band_to_band_2p5d",
    "ca_sbr_halve",
    "band_to_tridiagonal_1d",
    "eigensolve_2p5d",
    "EigensolveResult",
    "eigensolve_scalapack_like",
    "eigensolve_elpa_like",
    "eigensolve_ca_sbr",
]
