"""Symmetric eigensolvers (Section IV) and the Table I baselines.

* :func:`full_to_band_2p5d` — Algorithm IV.1: dense → band-width b with
  replicated storage and left-looking aggregated updates.
* :func:`band_to_band_2p5d` — Algorithm IV.2: pipelined bulge chasing with
  processor groups inside each chase.
* :func:`ca_sbr_halve` — the CA-SBR band-halving step (Lemma IV.2 baseline,
  stage 3 of the complete solver).
* :func:`eigensolve_2p5d` — Algorithm IV.3: the complete 2.5D eigensolver.
* :func:`eigensolve_scalapack_like`, :func:`eigensolve_elpa_like`,
  :func:`eigensolve_ca_sbr` — the other three rows of Table I.
* :mod:`repro.eig.schedule` — the bulge-chase pipeline schedule (Figure 2).
"""

from repro.eig.full_to_band import full_to_band_2p5d
from repro.eig.band_to_band import band_to_band_2p5d
from repro.eig.ca_sbr import ca_sbr_halve, band_to_tridiagonal_1d
from repro.eig.driver import eigensolve_2p5d, EigensolveResult
from repro.eig.scalapack_like import eigensolve_scalapack_like
from repro.eig.elpa_like import eigensolve_elpa_like
from repro.eig.ca_sbr_solver import eigensolve_ca_sbr

__all__ = [
    "full_to_band_2p5d",
    "band_to_band_2p5d",
    "ca_sbr_halve",
    "band_to_tridiagonal_1d",
    "eigensolve_2p5d",
    "EigensolveResult",
    "eigensolve_scalapack_like",
    "eigensolve_elpa_like",
    "eigensolve_ca_sbr",
    "SOLVERS",
    "solve_by_name",
]


def _baseline_result(machine, evals) -> EigensolveResult:
    """Wrap a baseline's bare spectrum in the driver's result type (the
    Table I baselines are 2-D: c = 1, no stage descriptors)."""
    return EigensolveResult(
        eigenvalues=evals, cost=machine.cost(), delta=0.5,
        replication=1, initial_bandwidth=0,
    )


def _solve_scalapack_like(machine, a, delta=0.5):
    return _baseline_result(machine, eigensolve_scalapack_like(machine, a))


def _solve_elpa_like(machine, a, delta=0.5):
    return _baseline_result(machine, eigensolve_elpa_like(machine, a))


def _solve_ca_sbr(machine, a, delta=0.5):
    return _baseline_result(machine, eigensolve_ca_sbr(machine, a))


#: uniform solver dispatch for the serving layer (repro.serve): every entry
#: is ``f(machine, a, delta) -> EigensolveResult``.  ``eig2p5d`` is the
#: paper's Algorithm IV.3 and the only δ-tunable entry; the Table I
#: baselines ignore δ (they are 2-D algorithms).
SOLVERS = {
    "eig2p5d": lambda machine, a, delta=0.5: eigensolve_2p5d(machine, a, delta=delta),
    "scalapack_like": _solve_scalapack_like,
    "elpa_like": _solve_elpa_like,
    "ca_sbr": _solve_ca_sbr,
}


def solve_by_name(name: str, machine, a, delta: float = 0.5) -> EigensolveResult:
    """Run the named solver (see :data:`SOLVERS`) on ``machine``."""
    try:
        solver = SOLVERS[name]
    except KeyError:
        raise ValueError(
            f"unknown solver {name!r}; expected one of {sorted(SOLVERS)}"
        ) from None
    return solver(machine, a, delta)
