"""Batched execution engine for the 2.5D band-to-band chase schedule.

:func:`repro.eig.band_to_band.apply_chase_parallel` charges every chase
step through full machine primitives and recursive kernel calls (rect-QR,
CARMA); at n ≥ 512 the per-step Python overhead of those recursions
dominates wall time even though the *charges* they produce depend only on
operand shapes and groups.  This engine runs the same panel-major schedule
with:

* window traffic appended to a :class:`repro.bsp.batch.ChargeLog` via the
  batched ``DistBandMatrix`` variants,
* kernel charges replayed from a :class:`repro.bsp.batch.KernelTape`
  (one real kernel run per distinct (shape, group) key),
* numerics done directly — one compact-WY QR and four dense products per
  step — instead of through the kernels' recursion trees.

Charge events are appended in exactly the per-step order (fetch, QR,
store, fetch, UT, W, V, rank-2h flops, UVᵀ, store — step by step in
panel-major order), so the single flush reproduces the per-step cost
report bit-for-bit on both counter engines.  The pipeline-wave structure
(steps sharing a ``phase``) is what makes the schedule's groups disjoint
and the linearization valid; see :func:`repro.eig.schedule.wave_sizes`.

Numerics note: the direct compact-WY factorization is a valid QR of the
same block the parallel kernel factors, so the reduction is numerically
equivalent (same R structure, orthogonally-similar trailing updates) but
not bit-equal to the kernel recursion's floating-point order.  Costs do
not depend on those low bits — window charges count nonzero structure,
everything else is shape-based — which the byte-identity tests pin down.
"""
# cost: free-module(numerics only; every charge goes through ChargeLog/KernelTape replay of the per-step sequence)

from __future__ import annotations

import numpy as np

from repro.bsp.batch import ChargeLog, KernelTape
from repro.bsp.kernels import qr_flops
from repro.bsp.machine import BSPMachine
from repro.dist.banded import DistBandMatrix
from repro.eig.schedule import group_of_step
from repro.linalg.householder import compact_wy_qr_general
from repro.linalg.sbr import chase_steps


def run_chases_batched(
    machine: BSPMachine,
    band: DistBandMatrix,
    h: int,
    subgroups: list,
    qr_size: int,
    n_groups: int,
) -> None:
    """Run the full chase schedule, charging through one ChargeLog flush.

    Mirrors the loop body of :func:`~repro.eig.band_to_band.band_to_band_2p5d`
    + :func:`~repro.eig.band_to_band.apply_chase_parallel` charge for charge.
    Caller guarantees ``batched_charging_ok(machine)``.
    """
    n, b = band.n, band.b
    log = ChargeLog(machine)
    tape = KernelTape(machine)
    data = band.data
    for step in chase_steps(n, b, h):
        gidx = group_of_step(step, n, b) % n_groups
        upd_group = subgroups[gidx]
        qr_group = upd_group.take(min(qr_size, upd_group.size))

        rows = slice(step.oqr_r, step.oqr_r + step.nr)
        cols = slice(step.oqr_c, step.oqr_c + step.ncols)
        block = band.fetch_window_batched(log, rows, cols, qr_group)
        m, ncols = block.shape
        u, t, r = compact_wy_qr_general(block)
        if m >= ncols and qr_group.size > 1:
            tape.rect_qr(log, m, ncols, qr_group)
        else:
            log.charge_flops(qr_group[0], qr_flops(max(m, ncols), min(m, ncols)))
            log.superstep(qr_group.indices(), 1)
        out = np.zeros_like(block)
        out[: r.shape[0], :] = r
        data[rows, cols] = out
        data[cols, rows] = out.T
        band.charge_store_batched(log, rows, cols, qr_group)

        if step.nc <= 0:
            continue
        up = slice(step.oup_c, step.oup_c + step.nc)
        bup = band.fetch_window_batched(log, up, rows, upd_group)
        ut = u @ t  # cost: free(replayed from the carma tape on the next line)
        tape.carma(log, u.shape[0], u.shape[1], t.shape[1], upd_group)
        w = bup @ ut  # cost: free(replayed from the carma tape on the next line)
        tape.carma(log, bup.shape[0], bup.shape[1], ut.shape[1], upd_group)
        v = -w
        vrows = slice(step.ov, step.ov + step.nr)
        inner = u.T @ w[vrows, :]  # cost: free(replayed from the carma tape on the next line)
        tape.carma(log, u.shape[1], u.shape[0], w.shape[1], upd_group)
        v[vrows, :] += 0.5 * (u @ (t.T @ inner))  # cost: free(charged via charge_flops on the next line)
        log.charge_flops(upd_group.indices(), 2.0 * u.size * t.shape[0] / upd_group.size)
        uvt = u @ v.T  # cost: free(replayed from the carma tape on the next line)
        tape.carma(log, u.shape[0], u.shape[1], v.shape[0], upd_group)
        data[rows, up] += uvt
        data[up, rows] += uvt.T
        band.charge_store_batched(log, rows, up, upd_group)
    log.flush()
