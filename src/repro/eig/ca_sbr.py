"""CA-SBR: communication-avoiding successive band reduction (baseline).

The band-halving step of Ballard–Demmel–Knight (Lemma IV.2): a 1-D
parallelization in which each rank owns a contiguous block of n/p̂ columns
and chases whole bulges through its region, synchronizing only with its
neighbours when a bulge crosses an ownership boundary.  Per halving of a
band-width b ≤ n/p this measures

    F = O(n²b/p),  W = O(n b),  Q = O(n²/p),  S = O(p),

(the W and S charges land only on the ranks at each hand-off, so the
per-rank maxima match the lemma).  CA-SBR is both the third row of Table I
(as the band stages of a 2D eigensolver) and stage 3 of Algorithm IV.3.

``band_to_tridiagonal_1d`` runs the same machinery with h = 1, which is
Lang's parallel band-to-tridiagonal algorithm — the second stage of the
ELPA baseline.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.group import RankGroup
from repro.bsp.kernels import matmul_flops, matmul_flops_arr, qr_flops, qr_flops_arr
from repro.bsp.machine import BSPMachine
from repro.dist.banded import DistBandMatrix
from repro.linalg.sbr import apply_chase_step, chase_steps


def _run_chases_1d_batched(
    machine: BSPMachine, band: DistBandMatrix, h: int, tag: str
) -> DistBandMatrix:
    """Batched twin of :func:`_run_chases_1d` (same charges, one flush).

    Charges are computed from the vectorized schedule arrays and appended
    to a :class:`~repro.bsp.batch.ChargeLog` in the per-step order — per
    step: QR flops, update flops, window stream, then the hand-off
    comm/sync when the bulge crosses an ownership boundary — so the flush
    reproduces the loop's cost report bit-for-bit.  The numerics loop is
    unchanged (identical `apply_chase_step` sequence).
    """
    from repro.bsp.batch import ChargeLog
    from repro.eig.schedule import chase_step_arrays

    n, b = band.n, band.b
    group = band.group
    arr = chase_step_arrays(n, b, h)
    nr, ncols, nc = arr["nr"], arr["ncols"], arr["nc"]
    owner = band._ranks_arr[
        np.searchsorted(band._col_starts, arr["oqr_c"], side="right") - 1
    ]
    nrf = nr.astype(np.float64)
    ncolsf = ncols.astype(np.float64)
    ncf = nc.astype(np.float64)
    log = ChargeLog(machine)
    # Per-step flop order (QR then update) per rank: interleave the two
    # per-step streams before the single add.
    qrf = qr_flops_arr(np.maximum(nrf, ncolsf), np.minimum(nrf, ncolsf))
    mmf = 3.0 * matmul_flops_arr(ncf, nrf, ncolsf)
    log.charge_flops(np.repeat(owner, 2), np.column_stack([qrf, mmf]).ravel())
    log.mem_stream(owner, (nc * nr + nr * ncols).astype(np.float64))
    # A hand-off happens exactly when the previous step of the *same panel*
    # had a different owner (panel-major order keeps panels contiguous).
    hand = (arr["i"][1:] == arr["i"][:-1]) & (owner[1:] != owner[:-1])
    if hand.any():
        src = owner[:-1][hand]
        dst = owner[1:][hand]
        words = (nr * (ncols + nc)).astype(np.float64)[1:][hand]
        log.charge_comm(src, words, dst, words)
        log.superstep(np.concatenate([src, dst]), 1)
    log.flush()
    for step in chase_steps(n, b, h):
        apply_chase_step(band.data, step)
    band.data[:] = (band.data + band.data.T) / 2.0
    return DistBandMatrix(machine, band.data, h, group)


def _run_chases_1d(
    machine: BSPMachine, band: DistBandMatrix, h: int, tag: str
) -> DistBandMatrix:
    """Drive all chase steps with 1-D column ownership and boundary syncs."""
    from repro.eig.band_to_band import resolve_chase_engine

    if resolve_chase_engine(machine) == "batched":
        return _run_chases_1d_batched(machine, band, h, tag)
    n, b = band.n, band.b
    group = band.group
    prev_owner: dict[int, int] = {}  # panel index -> owner of its last chase
    with machine.span("sbr_halve", group=group):
        for step in chase_steps(n, b, h):  # certify: trips((n / b) * (n / h) / p)
            owner = band.owner_of_col(step.oqr_c)
            # Local work: QR of the (nr × h) block + the window update.
            machine.charge_flops(owner, qr_flops(max(step.nr, step.ncols), min(step.nr, step.ncols)))
            machine.charge_flops(owner, 3.0 * matmul_flops(step.nc, step.nr, step.ncols))
            # Vertical traffic: the working window streams through cache.
            machine.mem_stream(owner, float(step.nc * step.nr + step.nr * step.ncols))
            # Boundary crossing: if this bulge just moved to a new owner, the
            # O(b²) window state is handed over and the pair synchronizes.
            last = prev_owner.get(step.i)
            if last is not None and last != owner:
                words = float(step.nr * (step.ncols + step.nc))
                machine.charge_comm(sends={last: words}, recvs={owner: words})  # certify: count(n / h)
                machine.superstep(RankGroup((last, owner)), 1)
                machine.trace.record("sbr_handoff", (last, owner), words=words, tag=tag)
            prev_owner[step.i] = owner
            apply_chase_step(band.data, step)
    band.data[:] = (band.data + band.data.T) / 2.0
    machine.trace.record("ca_sbr", group.ranks, tag=tag)
    return DistBandMatrix(machine, band.data, h, group)


def ca_sbr_halve(machine: BSPMachine, band: DistBandMatrix, tag: str = "ca_sbr") -> DistBandMatrix:
    """Halve the band-width (b → ⌈b/2⌉) with CA-SBR's 1-D pipeline."""
    if band.b < 2:
        raise ValueError("band-width must be at least 2 to halve")
    return _run_chases_1d(machine, band, max(1, band.b // 2), tag)


def ca_sbr_reduce(
    machine: BSPMachine, band: DistBandMatrix, target: int, tag: str = "ca_sbr"
) -> DistBandMatrix:
    """Repeatedly halve until the band-width is at most ``target``."""
    if target < 1:
        raise ValueError("target band-width must be >= 1")
    while band.b > target:
        band = _run_chases_1d(machine, band, max(target, band.b // 2), tag)
    return band


def band_to_tridiagonal_1d(
    machine: BSPMachine, band: DistBandMatrix, tag: str = "lang"
) -> DistBandMatrix:
    """Reduce band → tridiagonal in one stage (Lang's algorithm shape).

    Used by the ELPA-like baseline; the direct h = 1 reduction trades the
    multi-stage approach's lower synchronization for fewer stages.
    """
    if band.b <= 1:
        return band
    return _run_chases_1d(machine, band, 1, tag)
