"""Band-storage symmetric tridiagonalization (Schwarz/Rutishauser).

The finish stage of Algorithm IV.3 reduces the gathered band (width
b = n/p) to tridiagonal.  The dense-reference path
(:func:`repro.linalg.sbr.tridiagonalize_band_seq`) materializes the full
n×n matrix; this module does the same reduction *in band storage* with
one extra working diagonal for the travelling bulge — (b+2)·n words total,
the memory the paper's sequential finish actually needs.

Algorithm: Givens-based bandwidth reduction.  For each working band-width
``wb`` from b down to 2, annihilate every outermost-diagonal element
``A[j+wb, j]`` with a rotation of rows/columns ``(j+wb−1, j+wb)``; each
rotation spills one bulge element to distance ``wb+1``, which is chased off
the bottom of the matrix by further rotations before the next column starts.
O(n²·b) flops, O(b) work per rotation.

Storage convention matches :class:`repro.linalg.band.SymmetricBand`:
``data[d, j] = A[j+d, j]`` for ``d ∈ [0, b]``.
"""
# cost: free-module(sequential numerics; the finish stage charges analytic flop/stream costs)

from __future__ import annotations

import math

import numpy as np


def extract_band(a: np.ndarray, b: int) -> np.ndarray:
    """Lower-band storage ``data[d, j] = A[j+d, j]`` of a dense symmetric A."""
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    out = np.zeros((b + 1, n))
    for d in range(b + 1):
        out[d, : n - d] = a[np.arange(d, n), np.arange(n - d)]
    return out


def _givens(a: float, t: float) -> tuple[float, float]:
    """Rotation (c, s) with ``-s·a + c·t = 0`` and ``c·a + s·t = r ≥ 0``."""
    r = math.hypot(a, t)
    if r == 0.0:
        return 1.0, 0.0
    return a / r, t / r


def _rotate(work: np.ndarray, flat: np.ndarray, n: int, wbw: int,
            p: int, c: float, s: float) -> None:
    """Two-sided rotation of rows/columns (p, p+1) within band-width wbw.

    ``flat`` is ``work.ravel()`` — the row segments A[p, j] / A[q, j]
    (j < p) live on arithmetic progressions of step (1−n) in the raveled
    band, so both row segments and both column segments are strided-slice
    views: no fancy indexing in the hot loop.
    """
    q = p + 1
    step = 1 - n
    jlo = q - wbw
    if jlo < 0:
        jlo = 0
    if jlo < p:
        # A[p, j] = work[p-j, j] -> flat[p*n + j*step]; likewise row q.
        ap = flat[p * n + jlo * step : p : step]
        aq = flat[q * n + jlo * step : p + n : step]
        tp = c * ap + s * aq
        tq = c * aq - s * ap
        ap[:] = tp
        aq[:] = tq
    # 2×2 diagonal block.
    app = work[0, p]
    apq = work[1, p]
    aqq = work[0, q]
    cc = c * c
    ss = s * s
    cs = c * s
    work[0, p] = cc * app + 2.0 * cs * apq + ss * aqq
    work[0, q] = ss * app - 2.0 * cs * apq + cc * aqq
    work[1, p] = cs * (aqq - app) + (cc - ss) * apq
    # Columns p and q below the block: A[i, p] / A[i, q], i in (q, p+wbw].
    ihi = p + wbw
    if ihi > n - 1:
        ihi = n - 1
    if ihi > q:
        cp = work[2 : ihi - p + 1, p]
        cq = work[1 : ihi - q + 1, q]
        tp = c * cp + s * cq
        tq = c * cq - s * cp
        cp[:] = tp
        cq[:] = tq


def _rotate_scalar(wl: list, n: int, wbw: int, p: int, c: float, s: float) -> None:
    """Scalar-arithmetic variant of :func:`_rotate` for small band-widths.

    ``wl`` is the band as a list of per-diagonal Python lists; for wbw ≤ 4
    each rotation touches ≤ a dozen scalars and plain float arithmetic beats
    numpy's per-view overhead by ~3×.
    """
    q = p + 1
    jlo = q - wbw
    if jlo < 0:
        jlo = 0
    for j in range(jlo, p):
        rp = wl[p - j]
        rq = wl[q - j]
        ap = rp[j]
        aq = rq[j]
        rp[j] = c * ap + s * aq
        rq[j] = c * aq - s * ap
    w0 = wl[0]
    w1 = wl[1]
    app = w0[p]
    apq = w1[p]
    aqq = w0[q]
    cc = c * c
    ss = s * s
    cs = c * s
    w0[p] = cc * app + 2.0 * cs * apq + ss * aqq
    w0[q] = ss * app - 2.0 * cs * apq + cc * aqq
    w1[p] = cs * (aqq - app) + (cc - ss) * apq
    ihi = p + wbw
    if ihi > n - 1:
        ihi = n - 1
    for i in range(q + 1, ihi + 1):
        rp = wl[i - p]
        rq = wl[i - q]
        ap = rp[p]
        aq = rq[q]
        rp[p] = c * ap + s * aq
        rq[q] = c * aq - s * ap


def band_to_tridiagonal_storage(data: np.ndarray, b: int) -> tuple[np.ndarray, np.ndarray]:
    """Reduce band storage (shape (b+1, n)) to tridiagonal; returns (d, e).

    The input is not modified.  Working memory is one (b+2)·n array — the
    band plus a single bulge diagonal — instead of the dense path's n².
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] != b + 1:
        raise ValueError(f"band storage must have shape (b+1, n), got {data.shape}")
    n = data.shape[1]
    if b <= 1:
        d = data[0].copy()
        e = data[1, : n - 1].copy() if b == 1 else np.zeros(max(0, n - 1))
        return d, e
    work = np.zeros((b + 2, n))
    work[: b + 1] = data
    flat = work.ravel()
    # Lists-of-floats mirror of the band for the scalar fast path; kept in
    # sync with ``work`` by converting at each band-width switch.
    for wb in range(b, 1, -1):
        wbw = wb + 1
        scalar = wbw <= 5
        if scalar:
            wl = [list(map(float, work[d])) for d in range(wbw + 1)]
        for j in range(n - wb):
            t = wl[wb][j] if scalar else work[wb, j]
            if t == 0.0:
                continue
            # Annihilate A[j+wb, j] with a rotation at rows (j+wb−1, j+wb).
            k = j + wb
            if scalar:
                c, s = _givens(wl[wb - 1][j], t)
                _rotate_scalar(wl, n, wbw, k - 1, c, s)
                wl[wb][j] = 0.0
            else:
                c, s = _givens(work[wb - 1, j], t)
                _rotate(work, flat, n, wbw, k - 1, c, s)
                work[wb, j] = 0.0
            # Chase the spilled bulge (distance wb+1) off the matrix.
            pcol = k - 1
            while pcol + wbw < n:
                g = wl[wbw][pcol] if scalar else work[wbw, pcol]
                if g == 0.0:
                    break
                r0 = pcol + wbw
                if scalar:
                    c, s = _givens(wl[wbw - 1][pcol], g)
                    _rotate_scalar(wl, n, wbw, r0 - 1, c, s)
                    wl[wbw][pcol] = 0.0
                else:
                    c, s = _givens(work[wbw - 1, pcol], g)
                    _rotate(work, flat, n, wbw, r0 - 1, c, s)
                    work[wbw, pcol] = 0.0
                pcol = r0 - 1
        if scalar:
            for d in range(wbw + 1):
                work[d] = wl[d]
    return work[0].copy(), work[1, : n - 1].copy()
