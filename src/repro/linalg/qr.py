"""Sequential QR factorizations built on Householder reflections.

``householder_qr`` is the unblocked kernel; ``blocked_qr`` processes panels
of ``nb`` columns and applies aggregated block reflectors to the trailing
matrix — the sequential analogue of the communication-avoiding structure the
parallel algorithms exploit, and the base case used by all of them.
"""
# cost: free-module(sequential numerics; flops charged by repro.bsp.kernels callers)

from __future__ import annotations

import numpy as np

from repro.linalg.householder import (
    apply_block_reflector_left,
    compact_wy_qr,
    expand_q,
)


def householder_qr(a: np.ndarray, mode: str = "reduced") -> tuple[np.ndarray, np.ndarray]:
    """QR of an m×n matrix with m ≥ n via Householder reflections.

    ``mode='reduced'`` returns (m×n Q, n×n R); ``mode='complete'`` returns
    (m×m Q, m×n R).
    """
    a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    if m < n:
        raise ValueError(f"householder_qr requires m >= n, got {a.shape}")
    u, t, r = compact_wy_qr(a)
    if mode == "reduced":
        return expand_q(u, t), r
    if mode == "complete":
        q = expand_q(u, t, full=True)
        r_full = np.zeros((m, n))
        r_full[:n, :] = r
        return q, r_full
    raise ValueError(f"unknown mode {mode!r}")


def blocked_qr(a: np.ndarray, nb: int = 32) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Blocked Householder QR in compact-WY form.

    Factors A (m×n, m ≥ n) panel by panel; each panel's reflectors are
    aggregated into the global ``(U, T)`` pair so the caller gets one
    ``Q = I − U T Uᵀ`` for the whole factorization.

    Returns ``(U, T, R)`` with U m×n unit lower trapezoidal, T n×n upper
    triangular, R n×n upper triangular.
    """
    a = np.array(a, dtype=np.float64)
    m, n = a.shape
    if m < n:
        raise ValueError(f"blocked_qr requires m >= n, got {a.shape}")
    if nb <= 0:
        raise ValueError("nb must be positive")
    u = np.zeros((m, n))
    t = np.zeros((n, n))
    for j0 in range(0, n, nb):
        j1 = min(j0 + nb, n)
        # Panel factorization.
        up, tp, rp = compact_wy_qr(a[j0:, j0:j1])
        a[j0:j0 + rp.shape[0], j0:j1] = rp
        a[j0 + rp.shape[0]:, j0:j1] = 0.0
        # Trailing update: A[j0:, j1:] = Qpᵀ A[j0:, j1:].
        if j1 < n:
            a[j0:, j1:] = apply_block_reflector_left(up, tp, a[j0:, j1:], transpose=True)
        # Merge (up, tp) into the global (u, t):
        #   Q = Q_prev · Q_p  =>  T_new = [[T_prev, T12], [0, T_p]]
        #   with T12 = −T_prev (U_prevᵀ U_p) T_p.
        u[j0:, j0:j1] = up
        if j0 > 0:
            cross = u[j0:, :j0].T @ up  # U_prevᵀ U_p (only overlapping rows)
            t[:j0, j0:j1] = -t[:j0, :j0] @ cross @ tp
        t[j0:j1, j0:j1] = tp
    r = np.triu(a[:n, :])
    return u, t, r


def qr_residuals(a: np.ndarray, q: np.ndarray, r: np.ndarray) -> tuple[float, float]:
    """Return (‖A − QR‖_F / ‖A‖_F, ‖QᵀQ − I‖_F) for accuracy checks."""
    denom = max(np.linalg.norm(a), 1e-300)
    res = np.linalg.norm(a - q @ r) / denom
    orth = np.linalg.norm(q.T @ q - np.eye(q.shape[1]))
    return float(res), float(orth)
