"""Sequential dense/banded linear algebra written from scratch.

This package is the numerical substrate of the reproduction: Householder
transformations and their compact-WY aggregation, blocked QR, non-pivoted LU
(for Householder reconstruction), symmetric band storage, the two-sided
aggregated update of Eqn IV.1, successive band reduction via bulge chasing,
and tridiagonal eigensolvers (Sturm bisection and implicit-shift QL).

numpy is used only for array storage and BLAS-like primitives (``@``, slicing,
norms); all factorization logic is implemented here and validated against
``numpy.linalg`` in the tests.
"""

from repro.linalg.householder import (
    apply_block_reflector_left,
    apply_block_reflector_right,
    compact_wy_qr,
    householder_vector,
)
from repro.linalg.qr import blocked_qr, householder_qr
from repro.linalg.lu import lu_nopivot
from repro.linalg.band import SymmetricBand
from repro.linalg.two_sided import (
    aggregated_update_apply,
    aggregated_update_matmul,
    two_sided_update_vectors,
)
from repro.linalg.tridiag import (
    eigenvalue_count_below,
    sturm_bisection_eigenvalues,
    tridiagonal_eigenvalues_ql,
)
from repro.linalg.sbr import band_reduce_seq, full_to_band_seq, tridiagonalize_band_seq
from repro.linalg.reconstruct import householder_reconstruct

__all__ = [
    "apply_block_reflector_left",
    "apply_block_reflector_right",
    "compact_wy_qr",
    "householder_vector",
    "blocked_qr",
    "householder_qr",
    "lu_nopivot",
    "SymmetricBand",
    "aggregated_update_apply",
    "aggregated_update_matmul",
    "two_sided_update_vectors",
    "eigenvalue_count_below",
    "sturm_bisection_eigenvalues",
    "tridiagonal_eigenvalues_ql",
    "band_reduce_seq",
    "full_to_band_seq",
    "tridiagonalize_band_seq",
    "householder_reconstruct",
]
