"""Eigenvalues of symmetric tridiagonal matrices, from scratch.

Two independent methods (each validates the other in tests):

* **Sturm-sequence bisection** — the inertia count ``ν(x)`` (#eigenvalues
  below x) from the sign changes of the Sturm sequence, then bisection for
  every eigenvalue.  Robust, embarrassingly parallel across eigenvalues,
  vectorized here across bisection intervals.
* **Implicit-shift QL** — the classic ``tql2``-style iteration with Wilkinson
  shifts; O(n²) for eigenvalues only.

The paper delegates this final step to "one processor computes its
eigenvalues" (its cost is O(γ·n³/p + β·n²/p + α) in context); we implement
it rather than calling LAPACK, per the from-scratch ground rules.
"""

from __future__ import annotations

import numpy as np


def _validate_tridiag(d: np.ndarray, e: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    d = np.asarray(d, dtype=np.float64).ravel()
    e = np.asarray(e, dtype=np.float64).ravel()
    if d.size == 0:
        raise ValueError("empty tridiagonal matrix")
    if e.size != d.size - 1:
        raise ValueError(f"off-diagonal must have length n-1 = {d.size - 1}, got {e.size}")
    return d, e


def eigenvalue_count_below(d: np.ndarray, e: np.ndarray, x: np.ndarray | float) -> np.ndarray:
    """Count eigenvalues of tridiag(d, e) strictly below each shift in ``x``.

    Uses the stationary Sturm recurrence ``q_i = (d_i − x) − e_{i-1}²/q_{i-1}``;
    the number of negative q_i equals the inertia below x (Sylvester).
    Vectorized over shifts; the recurrence guards q = 0 with a tiny nudge
    (standard LAPACK dstebz safeguard).
    """
    d, e = _validate_tridiag(d, e)
    xs = np.atleast_1d(np.asarray(x, dtype=np.float64))
    n = d.size
    e2 = np.concatenate(([0.0], e * e))
    count = np.zeros(xs.shape, dtype=np.int64)
    q = np.full(xs.shape, 1.0)
    eps = np.finfo(np.float64).eps
    safmin = np.finfo(np.float64).tiny
    for i in range(n):
        q = (d[i] - xs) - e2[i] / q
        # Guard exact zeros so the division stays finite.
        tiny = np.abs(q) < safmin + eps * (abs(d[i]) + np.sqrt(e2[i]))
        q = np.where(tiny, -safmin - eps * (abs(d[i]) + np.sqrt(e2[i])), q)
        count += (q < 0.0).astype(np.int64)
    return count if np.ndim(x) else count  # always an array


def gershgorin_interval(d: np.ndarray, e: np.ndarray) -> tuple[float, float]:
    """Return an interval guaranteed to contain all eigenvalues."""
    d, e = _validate_tridiag(d, e)
    radius = np.zeros_like(d)
    radius[:-1] += np.abs(e)
    radius[1:] += np.abs(e)
    lo = float(np.min(d - radius))
    hi = float(np.max(d + radius))
    pad = 1e-12 * max(1.0, abs(lo), abs(hi))
    return lo - pad, hi + pad


def sturm_bisection_eigenvalues(
    d: np.ndarray, e: np.ndarray, tol: float = 0.0, max_iter: int = 128
) -> np.ndarray:
    """All eigenvalues of tridiag(d, e) by Sturm-sequence bisection.

    Bisects all n eigenvalue brackets simultaneously (vectorized over
    eigenvalue indices).  ``tol=0`` iterates to machine-precision-relative
    brackets.
    """
    d, e = _validate_tridiag(d, e)
    n = d.size
    if n == 1:
        return d.copy()
    lo, hi = gershgorin_interval(d, e)
    lower = np.full(n, lo)
    upper = np.full(n, hi)
    eps = np.finfo(np.float64).eps
    scale = max(abs(lo), abs(hi), 1e-300)
    target = np.arange(1, n + 1)  # eigenvalue k has ν(x) >= k for x above it
    for _ in range(max_iter):
        mid = 0.5 * (lower + upper)
        counts = eigenvalue_count_below(d, e, mid)
        # If at least k eigenvalues are below mid, eigenvalue k-1 is below mid.
        below = counts >= target
        upper = np.where(below, mid, upper)
        lower = np.where(below, lower, mid)
        width = np.max(upper - lower)
        if width <= max(tol, 4.0 * eps * scale):
            break
    return 0.5 * (lower + upper)


def tridiagonal_eigenvalues_ql(
    d: np.ndarray, e: np.ndarray, max_sweeps: int = 64
) -> np.ndarray:
    """All eigenvalues via implicit-shift QL iteration (tql2, values only).

    Deflates converged off-diagonals and applies the Wilkinson shift through
    plane rotations.  Raises ``RuntimeError`` if an eigenvalue fails to
    converge in ``max_sweeps`` sweeps (does not happen for symmetric input).
    """
    d, e = _validate_tridiag(d, e)
    d = d.copy()
    n = d.size
    ee = np.zeros(n)
    ee[: n - 1] = e
    eps = np.finfo(np.float64).eps
    for l in range(n):
        for sweep in range(max_sweeps + 1):
            # Find the first small off-diagonal at or after l (deflation point).
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if abs(ee[m]) <= eps * dd:
                    break
                m += 1
            if m == l:
                break
            if sweep == max_sweeps:
                raise RuntimeError(f"QL failed to converge for eigenvalue {l}")
            # Wilkinson shift from the leading 2x2.
            g = (d[l + 1] - d[l]) / (2.0 * ee[l])
            r = np.hypot(g, 1.0)
            g = d[m] - d[l] + ee[l] / (g + (r if g >= 0 else -r))
            s = c = 1.0
            p = 0.0
            for i in range(m - 1, l - 1, -1):
                f = s * ee[i]
                b = c * ee[i]
                r = np.hypot(f, g)
                ee[i + 1] = r
                if r == 0.0:
                    d[i + 1] -= p
                    ee[m] = 0.0
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * b
                p = s * r
                d[i + 1] = g + p
                g = c * r - b
            else:
                d[l] -= p
                ee[l] = g
                ee[m] = 0.0
                continue
            # Inner break (r == 0): retry the sweep.
            continue
    return np.sort(d)


def tridiagonal_from_dense(t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Extract (diagonal, subdiagonal) from a dense tridiagonal matrix."""
    return np.diag(t).copy(), np.diag(t, -1).copy()
