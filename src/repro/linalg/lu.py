"""Non-pivoted LU factorization.

Corollary III.7 (Householder reconstruction, after Ballard et al. IPDPS'14)
needs an LU factorization *without pivoting* of ``Q₁ − S`` where ``S`` is a
diagonal sign matrix chosen to make the matrix well conditioned for
elimination; no pivoting keeps the factors triangular in the way the
reconstruction formulas require.
"""
# cost: free-module(sequential numerics; flops charged by repro.bsp.kernels callers)

from __future__ import annotations

import numpy as np


def lu_nopivot(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Factor a square matrix as ``A = L U`` with unit-lower L, upper U.

    Raises ``ZeroDivisionError`` if a zero pivot is encountered — callers
    (Householder reconstruction) arrange diagonal dominance so this cannot
    happen for valid inputs.
    """
    a = np.array(a, dtype=np.float64)
    n, n2 = a.shape
    if n != n2:
        raise ValueError(f"lu_nopivot requires a square matrix, got {a.shape}")
    for k in range(n - 1):
        piv = a[k, k]
        if piv == 0.0:
            raise ZeroDivisionError(f"zero pivot at step {k} in non-pivoted LU")
        a[k + 1 :, k] /= piv
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    if n > 0 and a[n - 1, n - 1] == 0.0:
        # Singular but factorization completed; U carries the zero.
        pass
    lo = np.tril(a, -1) + np.eye(n)
    up = np.triu(a)
    return lo, up


def modified_lu(a: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Modified LU for Householder reconstruction (Ballard et al. IPDPS'14).

    Factors ``A − S = L·U`` where the diagonal sign matrix S is chosen *on
    the fly*: at step k, ``S_kk = −sign(A_kk^{(k)})`` of the current
    (partially eliminated) pivot, so every pivot has magnitude
    ``|A_kk^{(k)}| + 1 ≥ 1``.  For A the top block of a matrix with
    orthonormal columns this is unconditionally stable — the property
    Corollary III.7 relies on.

    Returns ``(L, U, s)`` with L unit lower triangular, U upper triangular,
    and ``s`` the diagonal of S.
    """
    a = np.array(a, dtype=np.float64)
    n, n2 = a.shape
    if n != n2:
        raise ValueError(f"modified_lu requires a square matrix, got {a.shape}")
    s = np.empty(n)
    for k in range(n):
        s[k] = -1.0 if a[k, k] >= 0.0 else 1.0
        a[k, k] -= s[k]
        if k < n - 1:
            a[k + 1 :, k] /= a[k, k]
            a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    lo = np.tril(a, -1) + np.eye(n)
    up = np.triu(a)
    return lo, up, s


def solve_unit_lower(lo: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L X = B`` for unit-lower-triangular L by forward substitution."""
    n = lo.shape[0]
    x = np.array(b, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, None]
        squeeze = True
    else:
        squeeze = False
    for i in range(n):
        x[i] -= lo[i, :i] @ x[:i]
    return x[:, 0] if squeeze else x


def solve_upper(up: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``U X = B`` for upper-triangular U by back substitution."""
    n = up.shape[0]
    x = np.array(b, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, None]
        squeeze = True
    else:
        squeeze = False
    for i in range(n - 1, -1, -1):
        if up[i, i] == 0.0:
            raise ZeroDivisionError(f"singular upper factor at row {i}")
        x[i] = (x[i] - up[i, i + 1 :] @ x[i + 1 :]) / up[i, i]
    return x[:, 0] if squeeze else x


def invert_unit_lower(lo: np.ndarray) -> np.ndarray:
    """Inverse of a unit-lower-triangular matrix."""
    return solve_unit_lower(lo, np.eye(lo.shape[0]))


def invert_upper(up: np.ndarray) -> np.ndarray:
    """Inverse of an upper-triangular matrix."""
    return solve_upper(up, np.eye(up.shape[0]))
