"""Sequential successive band reduction (SBR) via bulge chasing.

This module is the numerical reference for Section IV: a dense-to-banded
panel reduction (the sequential analogue of Algorithm IV.1) and a
banded-to-banded reduction following Algorithm IV.2's index algebra exactly
(the same :func:`chase_steps` drives the parallel version and the Figure 2
schedule reproduction).

Index conventions (0-indexed; the paper is 1-indexed):

For reduction from band-width ``b`` to ``h`` (``h | b`` not required, but
``h < b``), panel ``i ∈ [1, ⌈n/h⌉−1]`` and chase ``j ≥ 1``:

* ``oqr_r = i·h + (j−1)·b`` — first row of the QR block,
* ``oqr_c = oqr_r − h`` if j = 1 else ``oqr_r − b`` — first column,
* ``nr = min(n − oqr_r, b)`` — rows in the QR block (``h`` columns),
* ``oup_c = oqr_c + h``, ``nc = min(n − oup_c, h + 3b)`` — update window,
* ``ov = oqr_r − oup_c`` — row offset of the QR block inside the window.

Chase ``j`` exists while ``oqr_r < n``.  (The paper's loop bound
``⌊(n−ih−1)/b⌋`` is off by one in our reading — without the extra chase,
bulge tails near the matrix bottom survive; the tests demonstrate the fixed
bound reduces the band-width exactly.)
"""
# cost: free-module(sequential numerics; flops charged by repro.bsp.kernels callers)

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.householder import compact_wy_qr_general
from repro.util.validation import check_symmetric


@dataclass(frozen=True)
class ChaseStep:
    """One QR elimination + two-sided update of Algorithm IV.2 (0-indexed)."""

    i: int  # panel index (1-based, as in the paper)
    j: int  # chase index within the panel (1-based; j=1 is the elimination)
    oqr_r: int  # first row of the QR block
    oqr_c: int  # first column of the QR block
    nr: int  # rows in the QR block
    ncols: int  # columns in the QR block (h, clipped at matrix edge)
    oup_c: int  # first column of the update window
    nc: int  # width of the update window
    ov: int  # offset of the QR rows inside the update window

    @property
    def phase(self) -> int:
        """Pipeline phase: panel i starts after bulge i−1 is chased twice.

        Steps with equal phase run concurrently in Algorithm IV.2
        (cf. Figure 2: phase 5 = {(3,1), (2,3), (1,5)}).
        """
        return self.j + 2 * (self.i - 1)


def chase_steps(n: int, b: int, h: int) -> list[ChaseStep]:
    """Enumerate all chase steps reducing band-width ``b`` to ``h``.

    Returned in panel-major (sequential) order, which is a valid
    linearization of the paper's pipeline.
    """
    if not 1 <= h < b < n:
        raise ValueError(f"need 1 <= h < b < n, got h={h}, b={b}, n={n}")
    steps: list[ChaseStep] = []
    n_panels = -(-n // h) - 1  # ceil(n/h) − 1
    for i in range(1, n_panels + 1):
        j = 1
        while True:
            oqr_r = i * h + (j - 1) * b
            if oqr_r >= n:
                break
            oqr_c = oqr_r - h if j == 1 else oqr_r - b
            nr = min(n - oqr_r, b)
            ncols = min(h, n - oqr_c)
            oup_c = oqr_c + h
            nc = max(0, min(n - oup_c, h + 3 * b))
            ov = oqr_r - oup_c
            steps.append(
                ChaseStep(i=i, j=j, oqr_r=oqr_r, oqr_c=oqr_c, nr=nr, ncols=ncols, oup_c=oup_c, nc=nc, ov=ov)
            )
            j += 1
    return steps


def apply_chase_step(b_mat: np.ndarray, step: ChaseStep) -> tuple[np.ndarray, np.ndarray]:
    """Execute one chase step in place on the dense symmetric matrix.

    Returns the ``(U, T)`` compact-WY pair of the step's QR (callers that
    audit orthogonality or drive back-transformations can accumulate them).
    Follows lines 16–22 of Algorithm IV.2.
    """
    rows = slice(step.oqr_r, step.oqr_r + step.nr)
    cols = slice(step.oqr_c, step.oqr_c + step.ncols)
    u, t, r = compact_wy_qr_general(b_mat[rows, cols])
    # Lines 17: write [R; 0] and its transpose.
    blk = np.zeros((step.nr, step.ncols))
    blk[: r.shape[0], :] = r
    b_mat[rows, cols] = blk
    b_mat[cols, rows] = blk.T
    # Lines 18–22: trailing update on the window columns.
    if step.nc > 0:
        up = slice(step.oup_c, step.oup_c + step.nc)
        w = b_mat[up, rows] @ (u @ t)  # nc×r_ref
        v = -w
        vrows = slice(step.ov, step.ov + step.nr)
        v[vrows, :] += 0.5 * (u @ (t.T @ (u.T @ w[vrows, :])))
        b_mat[rows, up] += u @ v.T
        b_mat[up, rows] += v @ u.T
    return u, t


def band_reduce_seq(a: np.ndarray, b: int, h: int) -> np.ndarray:
    """Reduce a symmetric band-``b`` matrix to band-width ``h`` (dense I/O).

    Sequential reference implementation of Algorithm IV.2: same eigenvalues,
    band-width ``h`` on exit.
    """
    a = check_symmetric(a).copy()
    for step in chase_steps(a.shape[0], b, h):
        apply_chase_step(a, step)
    # Symmetrize to scrub roundoff asymmetry accumulated by the updates.
    a = (a + a.T) / 2.0
    return a


def full_to_band_seq(a: np.ndarray, b: int) -> np.ndarray:
    """Reduce a dense symmetric matrix to band-width ``b``.

    Right-looking sequential reference for Algorithm IV.1: panel QR of the
    sub-diagonal block, then the rank-2b two-sided update of Eqn IV.1 on the
    trailing matrix.
    """
    a = check_symmetric(a).copy()
    n = a.shape[0]
    if b < 1 or b >= n:
        raise ValueError(f"band-width must be in [1, n-1], got {b}")
    for c0 in range(0, n, b):
        r0 = c0 + b
        if r0 >= n:
            break
        w = min(b, n - c0)
        u, t, r = compact_wy_qr_general(a[r0:, c0 : c0 + w])
        blk = np.zeros((n - r0, w))
        blk[: r.shape[0], :] = r
        a[r0:, c0 : c0 + w] = blk
        a[c0 : c0 + w, r0:] = blk.T
        # Trailing two-sided update (Eqn IV.1) on A[r0:, r0:].
        x = a[r0:, r0:]
        wmat = x @ (u @ t)
        v = 0.5 * (u @ (t.T @ (u.T @ wmat))) - wmat
        a[r0:, r0:] = x + u @ v.T + v @ u.T
    return (a + a.T) / 2.0


def tridiagonalize_band_seq(a: np.ndarray, b: int) -> np.ndarray:
    """Reduce a symmetric band-``b`` matrix all the way to tridiagonal.

    Halves the band-width repeatedly (the multi-stage strategy of
    Algorithm IV.3) and finishes with a direct ``h=1`` reduction.
    """
    a = check_symmetric(a).copy()
    cur = b
    while cur > 1:
        nxt = max(1, cur // 2)
        a = band_reduce_seq(a, cur, nxt)
        cur = nxt
    return a


def eigenvalues_via_sbr(a: np.ndarray, b: int | None = None) -> np.ndarray:
    """Eigenvalues of a dense symmetric matrix via the full sequential
    pipeline: full→band→tridiagonal→Sturm bisection.

    ``b`` defaults to max(8, n // 8) — any intermediate band-width works.
    """
    from repro.linalg.tridiag import sturm_bisection_eigenvalues

    a = check_symmetric(a)
    n = a.shape[0]
    if n == 1:
        return a.ravel().copy()
    if b is None:
        b = min(max(8, n // 8), n - 1)
    banded = full_to_band_seq(a, b) if b < n - 1 else a.copy()
    tri = tridiagonalize_band_seq(banded, b)
    return sturm_bisection_eigenvalues(np.diag(tri).copy(), np.diag(tri, -1).copy())
