"""Symmetric band matrix storage.

Band-width ``b`` follows the paper's convention: ``A[i, j] = 0`` whenever
``|i − j| > b`` (tridiagonal ⇔ b = 1).  Storage is LAPACK-style lower band:
``data[d, j] = A[j + d, j]`` for ``d ∈ [0, b]`` — (b+1)·n words, which is what
the distributed banded layer charges for memory and communication.
"""
# cost: free-module(sequential band-container numerics; callers charge via repro.bsp.kernels or explicit machine charges)

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int


class SymmetricBand:
    """A symmetric matrix of order ``n`` with band-width ``b``.

    Only the lower band is stored.  Windows (dense sub-blocks) can be read
    and written for bulge chasing; writes outside the band raise unless the
    window was widened first with :meth:`widen`.
    """

    def __init__(self, n: int, bandwidth: int, data: np.ndarray | None = None):
        self.n = check_positive_int(n, "n")
        if bandwidth < 0 or bandwidth >= n:
            raise ValueError(f"bandwidth must be in [0, n-1], got {bandwidth}")
        self.b = int(bandwidth)
        if data is None:
            self.data = np.zeros((self.b + 1, self.n))
        else:
            data = np.asarray(data, dtype=np.float64)
            if data.shape != (self.b + 1, self.n):
                raise ValueError(f"data must have shape {(self.b + 1, self.n)}, got {data.shape}")
            self.data = data.copy()

    # ------------------------------------------------------------------ #
    # conversions

    @classmethod
    def from_dense(cls, a: np.ndarray, bandwidth: int) -> "SymmetricBand":
        """Extract the band of a dense symmetric matrix."""
        a = np.asarray(a, dtype=np.float64)
        n = a.shape[0]
        sb = cls(n, bandwidth)
        for d in range(bandwidth + 1):
            sb.data[d, : n - d] = np.diag(a, -d)
        return sb

    def to_dense(self) -> np.ndarray:
        """Materialize the full dense symmetric matrix."""
        a = np.zeros((self.n, self.n))
        for d in range(self.b + 1):
            idx = np.arange(self.n - d)
            a[idx + d, idx] = self.data[d, : self.n - d]
            if d > 0:
                a[idx, idx + d] = self.data[d, : self.n - d]
        return a

    # ------------------------------------------------------------------ #
    # element/window access

    def __getitem__(self, ij: tuple[int, int]) -> float:
        i, j = ij
        if i < j:
            i, j = j, i
        d = i - j
        if d > self.b:
            return 0.0
        return float(self.data[d, j])

    def __setitem__(self, ij: tuple[int, int], value: float) -> None:
        i, j = ij
        if i < j:
            i, j = j, i
        d = i - j
        if d > self.b:
            raise IndexError(f"({i},{j}) outside band-width {self.b}")
        self.data[d, j] = value

    def window(self, rows: slice, cols: slice) -> np.ndarray:
        """Return a dense copy of the sub-block A[rows, cols].

        Vectorized banded gather: element (i, j) lives at
        ``data[|i−j|, min(i,j)]`` when ``|i−j| ≤ b`` and is zero outside
        the band — one fancy-indexed read for the whole window.
        """
        r = np.arange(rows.start, rows.stop)
        c = np.arange(cols.start, cols.stop)
        i = np.maximum(r[:, None], c[None, :])
        j = np.minimum(r[:, None], c[None, :])
        d = i - j
        inside = d <= self.b
        return np.where(inside, self.data[np.where(inside, d, 0), np.where(inside, j, 0)], 0.0)

    @property
    def words(self) -> int:
        """Stored words: (b+1)·n."""
        return (self.b + 1) * self.n

    def bandwidth_check(self, tol: float = 1e-12) -> int:
        """Return the actual band-width of the stored data (≤ b)."""
        scale = max(1.0, float(np.abs(self.data).max(initial=0.0)))
        for d in range(self.b, 0, -1):
            if np.abs(self.data[d, : self.n - d]).max(initial=0.0) > tol * scale:
                return d
        return 0

    def shrink(self, new_bandwidth: int, tol: float = 1e-10) -> "SymmetricBand":
        """Return a copy with smaller band-width; data outside must be ~0."""
        if new_bandwidth >= self.b:
            raise ValueError("new bandwidth must be smaller")
        actual = self.bandwidth_check(tol)
        if actual > new_bandwidth:
            raise ValueError(f"matrix has band-width {actual} > requested {new_bandwidth}")
        out = SymmetricBand(self.n, new_bandwidth)
        out.data[:] = self.data[: new_bandwidth + 1]
        return out

    def eigenvalues(self) -> np.ndarray:
        """Eigenvalues via this repo's successive band reduction + bisection.

        Used at the very end of the parallel pipeline (the band is n/p wide,
        gathered on one rank).  Validated against numpy in tests.
        """
        from repro.linalg.band_tridiag import band_to_tridiagonal_storage
        from repro.linalg.tridiag import sturm_bisection_eigenvalues

        if self.b == 0:
            return np.sort(self.data[0].copy())
        if self.b == 1:
            d = self.data[0].copy()
            e = self.data[1, : self.n - 1].copy()
        else:
            # Reduce in band storage — (b+2)·n working words, never the
            # dense n² that to_dense() + tridiagonalize_band_seq needed.
            d, e = band_to_tridiagonal_storage(self.data, self.b)
        return sturm_bisection_eigenvalues(d, e)
