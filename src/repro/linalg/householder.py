"""Householder reflections and their compact-WY (blocked) aggregation.

Conventions (LAPACK-compatible):

* An elementary reflector is ``H = I − τ v vᵀ`` with ``v[0] = 1``.
* A product of ``n`` reflectors is ``Q = H₁ H₂ ⋯ Hₙ = I − U T Uᵀ`` where the
  columns of ``U`` (m×n, unit lower trapezoidal) are the reflector vectors
  and ``T`` (n×n) is upper triangular — the representation Section IV of the
  paper aggregates across panels.
"""
# cost: free-module(sequential numerics; flops charged by repro.bsp.kernels callers)

from __future__ import annotations

import numpy as np


def householder_vector(x: np.ndarray) -> tuple[np.ndarray, float, float]:
    """Compute a Householder reflector annihilating ``x[1:]``.

    Returns ``(v, tau, beta)`` with ``v[0] = 1`` such that
    ``(I − τ v vᵀ) x = (β, 0, …, 0)ᵀ`` and ``|β| = ‖x‖₂``.

    The sign of β is chosen opposite to ``x[0]`` (LAPACK's stable choice) so
    the subtraction ``x[0] − β`` never cancels.
    """
    v = np.array(x, dtype=np.float64).ravel()
    if v.size == 0:
        raise ValueError("householder_vector requires a non-empty vector")
    x0 = v[0]
    tail = v[1:]
    sigma = float(np.dot(tail, tail))
    v[0] = 1.0
    if sigma == 0.0:
        # Already of the desired form; H = I (tau = 0).
        return v, 0.0, float(x0)
    norm_x = np.sqrt(x0 ** 2 + sigma)
    beta = -norm_x if x0 >= 0 else norm_x
    v0 = x0 - beta
    tail /= v0
    tau = -v0 / beta
    return v, float(tau), float(beta)


def compact_wy_qr(a: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Householder QR in compact-WY form.

    Factors an m×n matrix (m ≥ n) as ``A = Q R`` with ``Q = I − U T Uᵀ``.

    Returns ``(U, T, R)``: U is m×n unit lower trapezoidal, T is n×n upper
    triangular, R is n×n upper triangular.
    """
    a = np.array(a, dtype=np.float64)
    m, n = a.shape
    if m < n:
        raise ValueError(f"compact_wy_qr requires m >= n, got {a.shape}")
    u = np.zeros((m, n))
    t = np.zeros((n, n))
    for j in range(n):
        v, tau, beta = householder_vector(a[j:, j])
        # Apply H_j to the trailing columns: A[j:, j:] -= tau v (vᵀ A[j:, j:])
        if tau != 0.0:
            w = tau * (v @ a[j:, j:])
            a[j:, j:] -= v[:, None] * w
        a[j, j] = beta
        a[j + 1 :, j] = 0.0
        u[j:, j] = v
        # Grow T: T[:j, j] = −τ · T[:j,:j] (U[:, :j]ᵀ v);  T[j, j] = τ.
        if j > 0 and tau != 0.0:
            z = u[j:, :j].T @ v
            t[:j, j] = -tau * (t[:j, :j] @ z)
        t[j, j] = tau
    # the loop zeroed every below-diagonal entry, so the leading block IS
    # upper triangular already — a plain copy equals np.triu bit-for-bit
    r = a[:n, :n].copy()
    return u, t, r


def compact_wy_qr_general(a: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact-WY QR of an arbitrary m×n matrix (m < n allowed).

    Uses ``r = min(m, n)`` reflectors.  Returns ``(U, T, R)`` with U of shape
    m×r, T r×r, and R the upper-trapezoidal r×n leading rows of QᵀA.  For
    m ≥ n this agrees with :func:`compact_wy_qr`.

    Needed by bulge chasing near the bottom of the band, where QR blocks can
    be short and wide.
    """
    a = np.array(a, dtype=np.float64)
    m, n = a.shape
    if m >= n:
        return compact_wy_qr(a)
    r = m
    u = np.zeros((m, r))
    t = np.zeros((r, r))
    for j in range(r):
        v, tau, beta = householder_vector(a[j:, j])
        if tau != 0.0:
            w = tau * (v @ a[j:, j:])
            a[j:, j:] -= v[:, None] * w
        a[j, j] = beta
        a[j + 1 :, j] = 0.0
        u[j:, j] = v
        if j > 0 and tau != 0.0:
            z = u[j:, :j].T @ v
            t[:j, j] = -tau * (t[:j, :j] @ z)
        t[j, j] = tau
    # below-diagonal entries of the first r columns were zeroed in the loop
    # and columns r: keep all their rows, so this equals np.triu(a[:r, :])
    return u, t, a[:r, :].copy()


def apply_block_reflector_left(
    u: np.ndarray, t: np.ndarray, c: np.ndarray, transpose: bool = False
) -> np.ndarray:
    """Compute ``Q C`` (or ``Qᵀ C``) for ``Q = I − U T Uᵀ`` without forming Q.

    ``QᵀC = C − U Tᵀ (Uᵀ C)``; cost O(mn·cols), the form used by every
    trailing-matrix update in the paper.
    """
    tm = t.T if transpose else t
    w = u.T @ c
    return c - u @ (tm @ w)


def apply_block_reflector_right(
    u: np.ndarray, t: np.ndarray, c: np.ndarray, transpose: bool = False
) -> np.ndarray:
    """Compute ``C Q`` (or ``C Qᵀ``) for ``Q = I − U T Uᵀ``."""
    tm = t.T if transpose else t
    w = c @ u
    return c - (w @ tm) @ u.T


def expand_q(u: np.ndarray, t: np.ndarray, full: bool = False) -> np.ndarray:
    """Materialize the orthogonal factor ``Q = I − U T Uᵀ``.

    With ``full=True`` returns the square m×m Q; otherwise the thin m×n
    first-n-columns block (``n`` = number of reflectors).
    """
    m, n = u.shape
    if full:
        return np.eye(m) - u @ t @ u.T
    # Thin Q = E − U T (Uᵀ E) where E is the first n columns of I_m.
    e = np.eye(m, n)
    return e - u @ (t @ u[:n, :].T)
