"""Eigenvectors via back-transformation (the paper's future work).

Section IV ends: "the cost of the back-transformations scales linearly with
the number of band-reduction stages (each stage requires O(n²) memory and
O(n³) computation). We leave the consideration of eigenvector construction
for future work."

This module implements the *sequential* version of that pipeline so the
claim can be exercised and the multi-stage overhead measured:

1. run the same reductions (full→band, band→band…→tridiagonal) while
   accumulating the orthogonal transform ``Q_total`` of every stage,
2. solve the tridiagonal problem with eigenvectors (inverse iteration seeded
   by the Sturm-bisection eigenvalues),
3. back-transform: ``V = Q_total · V_tri`` — one O(n³) product *per stage
   accumulated*, which is exactly the linear-in-stages cost the paper warns
   about (measured in ``flops_per_stage``).
"""
# cost: free-module(sequential back-transformation reference; not a charged parallel path (see docs/extending.md))

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.householder import compact_wy_qr_general
from repro.linalg.sbr import ChaseStep, chase_steps
from repro.linalg.tridiag import sturm_bisection_eigenvalues
from repro.util.validation import check_symmetric


def _apply_chase_accumulate(
    b_mat: np.ndarray, q_acc: np.ndarray, step: ChaseStep
) -> None:
    """One chase step, mirroring the orthogonal transform into ``q_acc``.

    ``B ← QᵀBQ`` and ``Q_acc ← Q_acc·Q`` where Q acts on the step's row
    window.  Unlike :func:`repro.linalg.sbr.apply_chase_step` this applies
    the two-sided update through the window explicitly (simpler to mirror).
    """
    rows = slice(step.oqr_r, step.oqr_r + step.nr)
    cols = slice(step.oqr_c, step.oqr_c + step.ncols)
    u, t, r = compact_wy_qr_general(b_mat[rows, cols])
    # Left: B[rows, :] ← Qᵀ B[rows, :];  right: B[:, rows] ← B[:, rows] Q.
    w = t.T @ (u.T @ b_mat[rows, :])
    b_mat[rows, :] -= u @ w
    w2 = (b_mat[:, rows] @ u) @ t
    b_mat[:, rows] -= w2 @ u.T
    # Accumulate: Q_acc[:, rows] ← Q_acc[:, rows]·Q.
    w3 = (q_acc[:, rows] @ u) @ t
    q_acc[:, rows] -= w3 @ u.T


@dataclass
class EigDecomposition:
    """Full symmetric eigendecomposition with stage bookkeeping."""

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    stage_bandwidths: list[int]
    flops_per_stage: list[float]

    @property
    def n_stages(self) -> int:
        return len(self.stage_bandwidths)


def _tridiagonal_eigenvectors(t: np.ndarray, evals: np.ndarray) -> np.ndarray:
    """Eigenvectors of a tridiagonal matrix by shifted inverse iteration.

    Eigenvalues come from Sturm bisection; each vector needs O(1) iterations
    of the shifted tridiagonal solve.  Clusters are re-orthogonalized by a
    thin QR over each near-degenerate block.
    """
    n = t.shape[0]
    vecs = np.zeros((n, n))
    rng = np.random.default_rng(0)
    eps = np.finfo(np.float64).eps
    scale = max(1.0, float(np.abs(evals).max()))
    for k, lam in enumerate(evals):
        shift = lam + eps * scale * 10.0
        m = t - shift * np.eye(n)
        v = rng.standard_normal(n)
        for _ in range(3):
            try:
                v = np.linalg.solve(m, v)
            except np.linalg.LinAlgError:
                m += eps * scale * 100.0 * np.eye(n)
                v = np.linalg.solve(m, v)
            v /= np.linalg.norm(v)
        vecs[:, k] = v
    # Re-orthogonalize clusters.  The tolerance is generous: QR over a block
    # of already-near-orthogonal vectors is harmless, while missing a tight
    # cluster leaves inverse iteration's mixed directions in place.
    k = 0
    tol = 1e-5 * scale
    while k < n:
        j = k + 1
        while j < n and evals[j] - evals[j - 1] <= tol:
            j += 1
        if j - k > 1:
            q, _ = np.linalg.qr(vecs[:, k:j])
            vecs[:, k:j] = q
        k = j
    return vecs


def symmetric_eig(a: np.ndarray, b: int | None = None) -> EigDecomposition:
    """Full eigendecomposition via multi-stage SBR with back-transformation.

    Mirrors Algorithm IV.3's reduction sequence sequentially (full → band b,
    then halvings to tridiagonal), accumulating the orthogonal transform of
    every stage, then back-transforms tridiagonal eigenvectors.
    """
    a = check_symmetric(a).copy()
    n = a.shape[0]
    if n == 1:
        return EigDecomposition(a.ravel().copy(), np.ones((1, 1)), [0], [0.0])
    if b is None:
        b = min(max(4, n // 8), n - 1)

    q_acc = np.eye(n)
    bandwidths: list[int] = []
    flops: list[float] = []

    # Stage 0: dense -> band b (panel QRs, mirrored into q_acc).
    stage_flops = 0.0
    for c0 in range(0, n, b):
        r0 = c0 + b
        if r0 >= n:
            break
        w = min(b, n - c0)
        u, t, r = compact_wy_qr_general(a[r0:, c0 : c0 + w])
        rows = slice(r0, n)
        wl = t.T @ (u.T @ a[rows, :])
        a[rows, :] -= u @ wl
        wr = (a[:, rows] @ u) @ t
        a[:, rows] -= wr @ u.T
        wq = (q_acc[:, rows] @ u) @ t
        q_acc[:, rows] -= wq @ u.T
        stage_flops += 8.0 * n * (n - r0) * w
    a = (a + a.T) / 2.0
    bandwidths.append(b)
    flops.append(stage_flops)

    # Band halvings down to tridiagonal, each accumulated.
    cur = b
    while cur > 1:
        nxt = max(1, cur // 2)
        stage_flops = 0.0
        for step in chase_steps(n, cur, nxt):
            _apply_chase_accumulate(a, q_acc, step)
            stage_flops += 8.0 * n * step.nr * step.ncols
        a = (a + a.T) / 2.0
        bandwidths.append(nxt)
        flops.append(stage_flops)
        cur = nxt

    d = np.diag(a).copy()
    e = np.diag(a, -1).copy()
    evals = sturm_bisection_eigenvalues(d, e)
    tri = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    v_tri = _tridiagonal_eigenvectors(tri, evals)
    vecs = q_acc @ v_tri
    return EigDecomposition(evals, vecs, bandwidths, flops)
