"""Householder reconstruction (Corollary III.7, after Ballard et al. IPDPS'14).

A reduction-tree QR (TSQR / rect-QR) produces its orthogonal factor as a
tree of reflectors — awkward to aggregate into the two-sided updates of
Section IV.  *Householder reconstruction* recovers a one-level compact-WY
representation from the explicit thin Q:

Given m×n Q with orthonormal columns, choose the diagonal sign matrix S with
``S_ii = −sign(Q_ii)`` (so the top block of ``Y = Q − S̄`` has diagonal of
magnitude ≥ 1, making non-pivoted LU stable), factor ``Y[:n] = U₁ W₁``
(unit-lower × upper), and set

    U = Y W₁⁻¹   (unit lower trapezoidal, U[:n] = U₁),
    T = −W₁ S U₁⁻ᵀ  (upper triangular).

Then the first n columns of ``I − U T Uᵀ`` equal ``Q·S`` exactly.  The sign
flip is benign — ``Q·S`` is an equally valid orthogonal factor with
``(Q·S)ᵀA = S·R`` — but callers must scale R's rows accordingly, so the
signs are returned.
"""
# cost: free-module(sequential numerics; flops charged by repro.bsp.kernels callers)

from __future__ import annotations

import numpy as np

from repro.linalg.lu import invert_unit_lower, invert_upper, modified_lu


def householder_reconstruct(q: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reconstruct compact-WY form from a thin orthonormal Q.

    Returns ``(U, T, s)`` with U m×n unit lower trapezoidal, T n×n upper
    triangular, and ``s`` the ±1 sign vector such that the first n columns
    of ``I − U T Uᵀ`` equal ``Q · diag(s)``.
    """
    q = np.asarray(q, dtype=np.float64)
    m, n = q.shape
    if m < n:
        raise ValueError(f"householder_reconstruct requires m >= n, got {q.shape}")
    # Modified LU picks the signs during elimination: Q1 − S = U1·W1 with
    # every pivot of magnitude >= 1 (unconditionally stable for orthonormal Q).
    u1, w1, s = modified_lu(q[:n, :])
    y = q.copy()
    y[:n, :] -= np.diag(s)
    u = y @ invert_upper(w1)
    t = np.triu(w1 @ (-np.diag(s)) @ invert_unit_lower(u1).T)
    return u, t, s


def reconstruct_q(u: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Thin orthogonal factor: first n columns of ``I − U T Uᵀ``."""
    m, n = u.shape
    e = np.eye(m, n)
    return e - u @ (t @ u[:n, :].T)


def reconstruction_error(q: np.ndarray, u: np.ndarray, t: np.ndarray, s: np.ndarray) -> float:
    """Frobenius error ‖Q·diag(s) − (I − U T Uᵀ)E‖_F."""
    return float(np.linalg.norm(q * s - reconstruct_q(u, t)))
