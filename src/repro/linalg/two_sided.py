"""Two-sided aggregated Householder updates (Eqns IV.1 and IV.2).

For a symmetric X and ``Q = I − U T Uᵀ``:

    QᵀXQ = X + U Vᵀ + V Uᵀ        with  V = ½·U Tᵀ (Uᵀ X U) T − X U T.

This rank-2b form is the key trick of Section IV: it is cheaper than the
explicit two-sided product, symmetric by construction, and *aggregates* —
appending more columns to (U, V) composes further transformations, enabling
the left-looking full-to-band algorithm (Algorithm IV.1).

The deferred-application identity (Eqn IV.2):

    (QᵀXQ)·Y = X·Y + U (Vᵀ Y) + V (Uᵀ Y),

lets a left-looking algorithm multiply by the *updated* trailing matrix
without ever forming it.
"""
# cost: free-module(sequential numerics; flops charged by repro.bsp.kernels callers)

from __future__ import annotations

import numpy as np


def two_sided_update_vectors(u: np.ndarray, t: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Compute V such that QᵀXQ = X + U Vᵀ + V Uᵀ (Eqn IV.1).

    ``x`` is symmetric n×n, ``u`` n×b, ``t`` b×b upper triangular.
    Evaluated right-to-left so every product is against a thin matrix.
    """
    w = x @ (u @ t)  # n×b: X U T
    # V = ½ U Tᵀ Uᵀ W − W
    v = 0.5 * (u @ (t.T @ (u.T @ w))) - w
    return v


def aggregated_update_apply(x: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Return X + U Vᵀ + V Uᵀ (applies an aggregated two-sided update)."""
    return x + u @ v.T + v @ u.T


def aggregated_update_matmul(
    x: np.ndarray, u: np.ndarray, v: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Return (X + U Vᵀ + V Uᵀ)·Y without forming the update (Eqn IV.2)."""
    return x @ y + u @ (v.T @ y) + v @ (u.T @ y)


def symmetric_two_sided(x: np.ndarray, u: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Reference QᵀXQ via the rank-2b form (used by tests against the
    explicit product)."""
    v = two_sided_update_vectors(u, t, x)
    return aggregated_update_apply(x, u, v)
