"""Command-line interface: ``python -m repro <command>``.

Commands
--------
solve    run the 2.5D eigensolver on a random symmetric matrix and print
         the spectrum edges plus the measured BSP cost breakdown
         (``--verify`` runs it on a VerifiedMachine that asserts the BSP
         discipline invariants every superstep)
run      alias of ``solve``
lint     static cost-accounting lint of the source tree (see
         docs/static_analysis.md)
bench    wall-clock benchmark of the accounting engine itself; with
         ``--check`` gates against a committed BENCH_engine.json baseline
trace    run one eigensolve with span tracing on, print the critical-path
         breakdown, and export a Chrome trace-event JSON (Perfetto);
         ``--per-rank`` adds a multi-track file with one timeline per rank
metrics  run one instrumented eigensolve and export per-rank metrics:
         rank-to-rank communication heatmap, memory watermarks vs the
         Theorem IV.4 bound, imbalance statistics, and bound-attainment
         ratios; with ``--check`` gates against a committed baseline
chaos    sweep seeded fault scenarios over the pinned eigensolve and
         assert the chaos invariant: every run recovers or fails with a
         typed, span-attributed error (see docs/robustness.md)
serve-bench
         run the pinned seeded workload through the batched eigensolver
         service (machine pool + bin-packing scheduler + persistent
         δ-autotuning cache): three passes (cold, warm from the persisted
         cache, then EDF scheduling), byte-identity verification of every
         served spectrum against single-shot solves, and a
         BENCH_serve.json throughput/latency/SLO report; ``--check``
         gates against a committed baseline, ``--soak`` runs a chaos
         scenario (solver faults, flaky-machine, straggler, poison-job,
         or crash/resume) and asserts never-silently-wrong, no-job-lost,
         and determinism (see docs/serving.md); ``--telemetry-out`` runs
         the observed pass of the unified telemetry layer and writes the
         deterministic telemetry.json (``--telemetry-check`` gates it,
         ``--merged-trace-out`` exports the merged Perfetto trace,
         ``--dash-out`` the flight-recorder HTML — see
         docs/observability.md)
dash     render a telemetry.json as a self-contained HTML flight-recorder
         dashboard (timeline, SLO hit rates, latency percentiles,
         breaker/hedge chronology)
table1   print the paper's Table I, symbolically and evaluated at (n, p)
figure1  print the Figure 1 structure diagram (Algorithm IV.1)
figure2  print the Figure 2 pipeline diagram (Algorithm IV.2)
tune     sweep δ for a machine profile and report the best setting
"""

from __future__ import annotations

import argparse
import sys


def _fail(msg: str) -> int:
    """Uniform CLI failure path: one-line diagnostic on stderr, exit 2."""
    print(f"repro: error: {msg}", file=sys.stderr)
    return 2


def _load_baseline(loader, path):
    """The shared ``--check`` preamble of every gated command.

    Loads the committed baseline *before* the (slow) suite runs, through
    the command's own ``loader``.  A missing or unreadable baseline is a
    configuration error, not a bench failure — the typed contract, shared
    by ``repro bench``, ``repro metrics``, ``repro serve-bench`` and the
    telemetry gate, is **exit 2** with a one-line message naming the
    expected file (each loader's FileNotFoundError text says how to
    create it).

    Returns ``(baseline, None)`` on success, ``(None, exit_code)`` on
    failure — the caller returns the exit code immediately.
    """
    from repro.bench import BenchError

    try:
        return loader(path), None
    except (OSError, ValueError, BenchError) as exc:
        return None, _fail(str(exc))


def _report_gate(failures: list[str], baseline_path, what: str) -> int:
    """The shared ``--check`` epilogue: print failures (exit 1) or the
    pass line (exit 0)."""
    if failures:
        print(f"\n{what} FAILED against baseline {baseline_path}:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"baseline check passed against {baseline_path}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro import BSPMachine, eigensolve_2p5d
    from repro.util import random_symmetric
    from repro.util.validation import reference_spectrum_error

    a = random_symmetric(args.n, seed=args.seed)
    if args.verify:
        from repro.lint.verify import VerifiedMachine

        machine: BSPMachine = VerifiedMachine.for_problem(args.p, args.n, args.delta)
    elif args.faults:
        from repro.faults import FaultPlan, FaultyMachine, parse_faults

        spec, fault_seed = parse_faults(args.faults)
        machine = FaultyMachine(args.p, plan=FaultPlan(spec, fault_seed), spans=True)
    else:
        from repro.faults import machine_from_env

        machine = machine_from_env(args.p)
    res = eigensolve_2p5d(machine, a, delta=args.delta)
    err = reference_spectrum_error(a, res.eigenvalues)
    print(f"n={args.n} p={args.p} delta={res.delta:.3f} c={res.replication} b0={res.initial_bandwidth}")
    print(f"lambda_min={res.eigenvalues[0]:+.6f}  lambda_max={res.eigenvalues[-1]:+.6f}")
    print(f"max |lambda - numpy| = {err:.3e}")
    print(res.stage_summary())
    if machine.faults.enabled:
        print(machine.plan.summary())
    if args.verify:
        print(
            f"verified: {machine.checks_run} invariant checks "
            f"(conservation, monotone counters, M <= {machine.memory_bound_words:.4g} words/rank) passed"
        )
    return 0 if err < 1e-6 else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import runner

    argv = [str(p) for p in args.paths]
    if args.baseline is not None:
        argv += ["--baseline", str(args.baseline)]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.fail_stale:
        argv.append("--fail-stale")
    if args.dataflow:
        argv.append("--dataflow")
    if args.explain is not None:
        argv += ["--explain", args.explain]
    if args.sarif is not None:
        argv += ["--sarif", str(args.sarif)]
    return runner.main(argv)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    baseline = None
    if args.check is not None:
        baseline, err = _load_baseline(bench.load_baseline, args.check)
        if err is not None:
            return err

    try:
        results = bench.run_suite(repeats=args.repeats)
    except bench.BenchError as exc:
        print(f"bench FAILED: {exc}", file=sys.stderr)
        return 1
    print(bench.render_results(results))
    out = bench.write_results(results, args.out)
    print(f"\nwrote {out}")
    if baseline is None:
        return 0
    try:
        final, failures = bench.check_with_retries(
            results, baseline, lambda: bench.run_suite(repeats=args.repeats)
        )
    except bench.BenchError as exc:
        print(f"bench FAILED: {exc}", file=sys.stderr)
        return 1
    if final is not results:
        out = bench.write_results(final, args.out)
        print(f"rewrote {out} with the re-timed results")
    return _report_gate(failures, args.check, "bench")


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import BSPMachine, eigensolve_2p5d
    from repro.trace import write_chrome_trace
    from repro.util import random_symmetric

    a = random_symmetric(args.n, seed=args.seed)
    machine = BSPMachine(args.p, engine=args.engine, spans=True, metrics=args.per_rank)
    res = eigensolve_2p5d(machine, a, delta=args.delta)
    breakdown = res.cost.by_span()
    engine = "scalar" if args.engine == "scalar" else "array"
    print(breakdown.render(
        title=f"critical-path breakdown (n={args.n}, p={args.p}, delta={res.delta:.3f}, engine={engine})"
    ))
    problems = breakdown.verify_exact()
    if problems:
        print(
            "trace FAILED: span sums diverge from the global cost report in: "
            + ", ".join(problems),
            file=sys.stderr,
        )
        return 1
    print("\nspan sums are bit-exact against the global cost report")
    out = args.out
    if out is None:
        out = Path("benchmarks") / "results" / f"trace_eig_n{args.n}_p{args.p}.json"
    path = write_chrome_trace(machine.spans, out, label=f"eigensolve_2p5d n={args.n} p={args.p}")
    print(f"wrote {path} ({len(machine.spans.events)} spans; open in Perfetto or chrome://tracing)")
    if args.per_rank:
        from repro.trace import write_chrome_trace_per_rank

        out = Path(out)
        per_rank_out = out.with_name(out.stem + ".per_rank" + out.suffix)
        snap = res.cost.metrics()
        path = write_chrome_trace_per_rank(
            machine.spans,
            per_rank_out,
            metrics=snap,
            label=f"eigensolve_2p5d n={args.n} p={args.p} (per rank)",
        )
        print(
            f"wrote {path} ({snap.p} rank tracks with memory/words counter series)"
        )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro import BSPMachine, bench, eigensolve_2p5d
    from repro.metrics import (
        DEFAULT_ENVELOPE,
        build_metrics_doc,
        check_metrics,
        load_metrics,
        render_metrics,
        write_metrics,
    )
    from repro.util import random_symmetric

    envelope = DEFAULT_ENVELOPE if args.envelope is None else args.envelope

    # Load the baseline *before* writing the fresh document: the default
    # output path is the committed baseline path, so writing first would
    # compare the fresh run against itself.
    baseline = None
    if args.check is not None:
        baseline, err = _load_baseline(load_metrics, args.check)
        if err is not None:
            return err

    def run() -> dict:
        a = random_symmetric(args.n, seed=args.seed)
        machine = BSPMachine(args.p, engine=args.engine, spans=True, metrics=True)
        res = eigensolve_2p5d(machine, a, delta=args.delta)
        engine = "scalar" if args.engine == "scalar" else "array"
        return build_metrics_doc(res, args.n, engine=engine, config={"seed": args.seed})

    doc = run()
    print(render_metrics(doc))
    out = args.out
    if out is None:
        from pathlib import Path

        out = Path("benchmarks") / "results" / f"metrics_eig_n{args.n}_p{args.p}.json"
    out = write_metrics(doc, out)
    print(f"\nwrote {out}")
    if doc["conservation"]["problems"]:
        print("metrics FAILED: conservation violated:", file=sys.stderr)
        for problem in doc["conservation"]["problems"]:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    if baseline is None:
        return 0
    # check_metrics never emits wall-clock failures, so the retry loop of
    # check_with_retries never fires — the gate is fully deterministic.
    final, failures = bench.check_with_retries(
        doc, baseline, run, wall_tolerance=envelope, check=check_metrics
    )
    return _report_gate(failures, args.check, "metrics")


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import render_report, run_chaos, write_report

    outcomes = run_chaos(
        range(args.seed0, args.seed0 + args.seeds),
        n=args.n, p=args.p, delta=args.delta, tol=args.tol,
    )
    print(render_report(outcomes, n=args.n, p=args.p))
    out = write_report(outcomes, args.out, n=args.n, p=args.p)
    print(f"\nwrote {out}")
    bad = [o for o in outcomes if not o.ok]
    if bad:
        seeds = ", ".join(str(o.seed) for o in bad)
        print(
            f"chaos FAILED: {len(bad)} run(s) returned a silently wrong "
            f"spectrum (seeds {seeds})",
            file=sys.stderr,
        )
        return 1
    recovered = sum(o.outcome == "recovered" for o in outcomes)
    typed = sum(o.outcome == "typed-error" for o in outcomes)
    print(
        f"chaos invariant holds: {recovered} recovered, {typed} failed with "
        "typed span-attributed errors, 0 silently wrong"
    )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro import bench
    from repro.serve import bench as serve_bench

    if args.soak:
        try:
            doc = serve_bench.run_soak(
                jobs=args.soak_jobs,
                scenario=args.faults,
                fault_seed0=args.fault_seed0,
                tol=args.tol,
                workers=args.workers,
                journal_path=args.journal,
                dash_path=args.dash_out,
            )
        except (ValueError, bench.BenchError) as exc:
            print(f"serve soak FAILED: {exc}", file=sys.stderr)
            return 1
        out = serve_bench.write_serve_results(doc, args.soak_out)
        print(f"wrote {out}")
        if doc.get("dash"):
            print(
                f"wrote {doc['dash']['path']} "
                f"(flight recorder: {doc['dash']['events']} lifecycle events)"
            )
        violations = []
        if doc["silent_wrong"]:
            violations.append(
                f"{len(doc['silent_wrong'])} job(s) returned a silently wrong spectrum"
            )
        if not doc.get("no_job_lost", False):
            violations.append(
                "journal shows submitted jobs without a terminal disposition "
                f"(missing: {doc.get('journal', {}).get('missing_terminals')})"
            )
        if not doc.get("deterministic", False):
            violations.append(
                "two same-seed runs produced different summaries"
                if args.faults != "crash"
                else "resumed run is not byte-identical to the uninterrupted run"
            )
        if violations:
            print("serve soak FAILED:", file=sys.stderr)
            for v in violations:
                print(f"  - {v}", file=sys.stderr)
            return 1
        print(
            f"serve soak invariants hold: {doc['ok']}/{doc['jobs']} ok "
            f"({doc['degraded']} degraded, {doc.get('shed', 0)} shed), "
            f"{doc['typed_errors']} typed errors, 0 silently wrong, "
            "no job lost, deterministic"
        )
        return 0

    # both baselines load before any (slow) suite so a missing file fails
    # fast with the shared exit-2 contract
    baseline = None
    if args.check is not None:
        baseline, err = _load_baseline(serve_bench.load_serve_baseline, args.check)
        if err is not None:
            return err
    tel_baseline = None
    if args.telemetry_check is not None:
        from repro.obs import load_telemetry

        tel_baseline, err = _load_baseline(load_telemetry, args.telemetry_check)
        if err is not None:
            return err

    want_telemetry = args.telemetry_only or any(
        x is not None
        for x in (
            args.telemetry_out, args.telemetry_check,
            args.merged_trace_out, args.dash_out,
        )
    )

    if not args.telemetry_only:

        def run() -> dict:
            return serve_bench.run_serve_suite(
                cache_path=args.cache,
                trace_path=args.trace_out,
                workers=args.workers,
            )

        try:
            doc = run()
        except bench.BenchError as exc:
            print(f"serve-bench FAILED: {exc}", file=sys.stderr)
            return 1
        print(serve_bench.render_serve(doc))
        out = serve_bench.write_serve_results(doc, args.out)
        print(f"\nwrote {out}")
        if baseline is not None:
            try:
                final, failures = bench.check_with_retries(
                    doc, baseline, run, check=serve_bench.check_serve
                )
            except bench.BenchError as exc:
                print(f"serve-bench FAILED: {exc}", file=sys.stderr)
                return 1
            if final is not doc:
                out = serve_bench.write_serve_results(final, args.out)
                print(f"rewrote {out} with the re-timed results")
            rc = _report_gate(failures, args.check, "serve-bench")
            if rc != 0:
                return rc

    if not want_telemetry:
        return 0

    # the observed pass: separate from the wall-clock passes above (span
    # capture slows the wall clock, never the simulated results)
    from repro.obs import check_telemetry, render_telemetry, write_telemetry

    try:
        tdoc = serve_bench.run_telemetry_suite(
            workers=args.workers,
            trace_path=args.merged_trace_out,
            dash_path=args.dash_out,
        )
    except bench.BenchError as exc:
        print(f"serve-bench telemetry FAILED: {exc}", file=sys.stderr)
        return 1
    print(render_telemetry(tdoc))
    if args.telemetry_out is not None:
        out = write_telemetry(tdoc, args.telemetry_out)
        print(f"wrote {out}")
    if args.merged_trace_out is not None:
        print(f"wrote {args.merged_trace_out} (merged Perfetto trace)")
    if args.dash_out is not None:
        print(f"wrote {args.dash_out} (flight-recorder dashboard)")
    if tel_baseline is None:
        return 0
    # fully deterministic — no retry loop needed
    return _report_gate(
        check_telemetry(tdoc, tel_baseline), args.telemetry_check,
        "serve-bench telemetry",
    )


def _cmd_dash(args: argparse.Namespace) -> int:
    from repro.obs import load_telemetry, write_dash

    # missing/unreadable telemetry document: the shared exit-2 contract
    doc, err = _load_baseline(load_telemetry, args.telemetry)
    if err is not None:
        return err
    out = write_dash(doc, args.out, title=args.title)
    ev = doc.get("events", {})
    print(
        f"wrote {out} (flight recorder: {ev.get('count', 0)} lifecycle "
        f"events, {doc.get('solver', {}).get('span_events', 0)} solver span "
        "events; self-contained HTML — open in a browser)"
    )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.model.table1 import render_table1, table1_numeric
    from repro.report.tables import format_table

    print(render_table1())
    print()
    rows = [
        [name, cost.W, cost.Q, cost.S]
        for name, cost in table1_numeric(args.n, args.p, args.delta).items()
    ]
    print(format_table(
        ["algorithm", "W", "Q", "S"],
        rows,
        title=f"evaluated at n={args.n}, p={args.p}, delta={args.delta:.3f}",
    ))
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.report.figures import render_figure1

    print(render_figure1(n_panels=args.panels, step=args.step))
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    from repro.report.figures import render_figure2

    print(render_figure2(n=args.n, b=args.b, k=args.k))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.bsp.params import MachineParams
    from repro.model.tuning import best_delta, tuning_table
    from repro.report.tables import format_table

    params = MachineParams(
        gamma=args.gamma, beta=args.beta, nu=args.nu, alpha=args.alpha,
        memory_words=args.memory,
    )
    rows = [
        [r["delta"], r["c"], r["W"], r["S"], r["memory_words"], "yes" if r["fits"] else "no", r["time"]]
        for r in tuning_table(args.n, args.p, params)
    ]
    print(format_table(
        ["delta", "c", "W", "S", "M/rank", "fits", "modeled T"],
        rows,
        title=f"Theorem IV.4 tuning (n={args.n}, p={args.p})",
    ))
    try:
        d, t = best_delta(args.n, args.p, params)
        print(f"\nbest delta = {d:.4f}  (c = {args.p ** (2 * d - 1):.2f}),  modeled T = {t:.4g}")
        return 0
    except ValueError as exc:
        print(f"\nno feasible delta: {exc}", file=sys.stderr)
        return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Communication-avoiding symmetric eigensolver (SPAA'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("solve", "run"):
        p_solve = sub.add_parser(name, help="run the 2.5D eigensolver" + (" (alias of solve)" if name == "run" else ""))
        p_solve.add_argument("--n", type=int, default=128)
        p_solve.add_argument("--p", type=int, default=16)
        p_solve.add_argument("--delta", type=float, default=2.0 / 3.0)
        p_solve.add_argument("--seed", type=int, default=0)
        p_solve.add_argument(
            "--verify",
            action="store_true",
            help="run on a VerifiedMachine asserting BSP discipline invariants per superstep",
        )
        p_solve.add_argument(
            "--faults",
            default="",
            metavar="SCENARIO[:SEED]",
            help="run on a FaultyMachine injecting the named seeded fault "
            "scenario (also honored via REPRO_FAULTS; see repro chaos)",
        )
        p_solve.set_defaults(fn=_cmd_solve)

    from pathlib import Path

    p_lint = sub.add_parser("lint", help="static cost-accounting lint")
    p_lint.add_argument("paths", nargs="*", type=Path)
    p_lint.add_argument("--baseline", type=Path, default=None)
    p_lint.add_argument("--no-baseline", action="store_true")
    p_lint.add_argument("--write-baseline", action="store_true")
    p_lint.add_argument(
        "--fail-stale",
        action="store_true",
        help="error on baseline entries allowing more findings than currently exist",
    )
    p_lint.add_argument(
        "--dataflow",
        action="store_true",
        help="interprocedural race/ownership rules and symbolic cost certificates",
    )
    p_lint.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print the long-form explanation for one rule and exit",
    )
    p_lint.add_argument(
        "--sarif", type=Path, default=None, metavar="PATH",
        help="also write findings as a SARIF 2.1.0 log",
    )
    p_lint.set_defaults(fn=_cmd_lint)

    p_bench = sub.add_parser("bench", help="wall-clock benchmark of the accounting engine")
    p_bench.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per case (median is reported)"
    )
    p_bench.add_argument(
        "--out",
        type=Path,
        default=Path("benchmarks") / "results" / "BENCH_engine.json",
        help="where to write the fresh results JSON",
    )
    p_bench.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed BENCH_engine.json; exit 1 on cost drift, "
        ">25%% wall regression (host-calibrated), or speedup below the 3x floor",
    )
    p_bench.set_defaults(fn=_cmd_bench)

    p_trace = sub.add_parser(
        "trace",
        help="span-traced eigensolve: critical-path breakdown + Chrome trace JSON",
    )
    p_trace.add_argument("--n", type=int, default=96)
    p_trace.add_argument("--p", type=int, default=16)
    p_trace.add_argument("--delta", type=float, default=2.0 / 3.0)
    p_trace.add_argument("--seed", type=int, default=3)
    p_trace.add_argument(
        "--engine",
        choices=("array", "scalar"),
        default=None,
        help="accounting engine (default: the vectorized array engine)",
    )
    p_trace.add_argument(
        "--out",
        type=Path,
        default=None,
        help="Chrome trace-event JSON path (default benchmarks/results/trace_eig_n<N>_p<P>.json)",
    )
    p_trace.add_argument(
        "--per-rank",
        action="store_true",
        help="also write a multi-track Perfetto file (<out>.per_rank.json) with "
        "one timeline per rank plus memory/words counter tracks",
    )
    p_trace.set_defaults(fn=_cmd_trace)

    p_metrics = sub.add_parser(
        "metrics",
        help="per-rank metrics: comm heatmap, memory watermarks, bound attainment",
    )
    p_metrics.add_argument("--n", type=int, default=96)
    p_metrics.add_argument("--p", type=int, default=16)
    p_metrics.add_argument("--delta", type=float, default=2.0 / 3.0)
    p_metrics.add_argument("--seed", type=int, default=3)
    p_metrics.add_argument(
        "--engine",
        choices=("array", "scalar"),
        default=None,
        help="accounting engine (default: the vectorized array engine)",
    )
    p_metrics.add_argument(
        "--out",
        type=Path,
        default=None,
        help="metrics JSON path (default benchmarks/results/metrics_eig_n<N>_p<P>.json)",
    )
    p_metrics.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="gate against a committed metrics JSON: conservation, memory "
        "watermark <= model bound, exact comm totals, attainment drift <= envelope",
    )
    p_metrics.add_argument(
        "--envelope",
        type=float,
        default=None,
        help="relative attainment drift allowed vs the baseline (default 0.25)",
    )
    p_metrics.set_defaults(fn=_cmd_metrics)

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault-scenario sweep over the pinned eigensolve",
    )
    p_chaos.add_argument("--n", type=int, default=96)
    p_chaos.add_argument("--p", type=int, default=16)
    p_chaos.add_argument("--delta", type=float, default=2.0 / 3.0)
    p_chaos.add_argument("--seeds", type=int, default=8, help="number of seeded runs")
    p_chaos.add_argument("--seed0", type=int, default=0, help="first seed of the sweep")
    p_chaos.add_argument(
        "--tol", type=float, default=1e-6,
        help="spectrum tolerance of the recovered verdict (clean-run gate)",
    )
    p_chaos.add_argument(
        "--out",
        type=Path,
        default=Path("benchmarks") / "results" / "chaos_report.json",
        help="per-scenario outcome report JSON (the CI artifact)",
    )
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_serve = sub.add_parser(
        "serve-bench",
        help="batched eigensolver service throughput bench (pinned workload)",
    )
    p_serve.add_argument(
        "--out",
        type=Path,
        default=Path("benchmarks") / "results" / "BENCH_serve.json",
        help="where to write the fresh results JSON",
    )
    p_serve.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="gate against a committed BENCH_serve.json: exact simulated "
        "latency/cost/regime drift, warm-pass cache hit rate >= 80%%, "
        "byte-identity of served spectra, and host-calibrated throughput",
    )
    p_serve.add_argument(
        "--cache",
        type=Path,
        default=Path("benchmarks") / "results" / "serve_tuning_cache.json",
        help="persistent tuning-cache path (removed first so the cold pass is cold)",
    )
    p_serve.add_argument(
        "--trace-out",
        type=Path,
        default=Path("benchmarks") / "results" / "serve_trace.json",
        help="where to write the generated workload trace (the CI artifact)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="multiprocessing pool workers for the solve phase (0 = inline)",
    )
    p_serve.add_argument(
        "--soak",
        action="store_true",
        help="fault-injection soak instead of the throughput bench: pool "
        "workers run under the named fault scenario; every job must recover, "
        "degrade to a replicated solve, or fail typed — never silently wrong",
    )
    p_serve.add_argument(
        "--soak-jobs", type=int, default=48, help="workload size of the soak run"
    )
    p_serve.add_argument(
        "--soak-out",
        type=Path,
        default=Path("benchmarks") / "results" / "serve_soak.json",
        help="soak report JSON (the nightly CI artifact)",
    )
    p_serve.add_argument(
        "--faults",
        default="chaos",
        metavar="SCENARIO",
        help="chaos scenario of --soak: a solver-level fault scenario "
        "(chaos, rank-failure, ...), a service-level one (flaky-machine, "
        "straggler, poison-job), or crash (kill + journal resume)",
    )
    p_serve.add_argument(
        "--journal",
        type=Path,
        default=Path("benchmarks") / "results" / "serve_journal.jsonl",
        help="write-ahead job journal path of the soak run (the no-job-lost "
        "evidence; uploaded as a nightly CI artifact)",
    )
    p_serve.add_argument(
        "--fault-seed0", type=int, default=0, help="first per-job fault seed of the soak"
    )
    p_serve.add_argument(
        "--tol", type=float, default=1e-6,
        help="spectrum tolerance of the soak's silently-wrong verdict",
    )
    p_serve.add_argument(
        "--telemetry-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="run the telemetry-on pass (strict no-op gated against an "
        "unobserved pass) and write the deterministic telemetry.json there",
    )
    p_serve.add_argument(
        "--telemetry-check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="gate the telemetry-on pass against a committed telemetry.json "
        "(exact equality — every field is deterministic)",
    )
    p_serve.add_argument(
        "--merged-trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the merged Perfetto trace of the telemetry pass: service "
        "tracks + per-job solver tracks linked by flow events",
    )
    p_serve.add_argument(
        "--dash-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the self-contained HTML flight-recorder dashboard of the "
        "telemetry pass (with --soak: of the soak run)",
    )
    p_serve.add_argument(
        "--telemetry-only",
        action="store_true",
        help="skip the three wall-clock passes and run only the telemetry "
        "pass (baseline generation / quick dashboard refresh)",
    )
    p_serve.set_defaults(fn=_cmd_serve_bench)

    p_dash = sub.add_parser(
        "dash",
        help="render a telemetry.json as a self-contained HTML flight recorder",
    )
    p_dash.add_argument(
        "--telemetry",
        type=Path,
        default=Path("benchmarks") / "results" / "telemetry.json",
        help="telemetry document to render (written by "
        "`repro serve-bench --telemetry-out`)",
    )
    p_dash.add_argument(
        "--out",
        type=Path,
        default=Path("benchmarks") / "results" / "serve_dash.html",
        help="where to write the HTML report",
    )
    p_dash.add_argument(
        "--title",
        default="repro service flight recorder",
        help="report title",
    )
    p_dash.set_defaults(fn=_cmd_dash)

    p_t1 = sub.add_parser("table1", help="print Table I")
    p_t1.add_argument("--n", type=int, default=65536)
    p_t1.add_argument("--p", type=int, default=32768)
    p_t1.add_argument("--delta", type=float, default=2.0 / 3.0)
    p_t1.set_defaults(fn=_cmd_table1)

    p_f1 = sub.add_parser("figure1", help="print Figure 1")
    p_f1.add_argument("--panels", type=int, default=6)
    p_f1.add_argument("--step", type=int, default=3)
    p_f1.set_defaults(fn=_cmd_figure1)

    p_f2 = sub.add_parser("figure2", help="print Figure 2")
    p_f2.add_argument("--n", type=int, default=48)
    p_f2.add_argument("--b", type=int, default=8)
    p_f2.add_argument("--k", type=int, default=2)
    p_f2.set_defaults(fn=_cmd_figure2)

    p_tune = sub.add_parser("tune", help="pick delta/c for a machine")
    p_tune.add_argument("--n", type=int, default=65536)
    p_tune.add_argument("--p", type=int, default=32768)
    p_tune.add_argument("--gamma", type=float, default=1.0)
    p_tune.add_argument("--beta", type=float, default=100.0)
    p_tune.add_argument("--nu", type=float, default=10.0)
    p_tune.add_argument("--alpha", type=float, default=1e5)
    p_tune.add_argument("--memory", type=float, default=float("inf"))
    p_tune.set_defaults(fn=_cmd_tune)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.faults.errors import FaultError

    try:
        return args.fn(args)
    except FaultError as exc:
        # typed fault-layer errors already carry their span attribution
        return _fail(str(exc))
    except (ValueError, TypeError, FileNotFoundError, NotImplementedError) as exc:
        # invalid n/p/delta combinations etc. — one-line diagnostic, not a
        # traceback (matching _cmd_bench's BenchError handling)
        return _fail(str(exc))


if __name__ == "__main__":
    raise SystemExit(main())
