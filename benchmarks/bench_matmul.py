"""Lemma III.2 — CARMA rectangular matmul: the three cost regimes.

Sweeps matrix shapes across the lemma's 1D / 2D / 3D regimes at fixed p and
checks the measured W against the closed-form bound, plus the
memory-communication trade-off (a tight budget inflates W and S).
"""

import math

from repro.bsp import BSPMachine
from repro.blocks.matmul import carma_matmul
from repro.model.costs import carma_cost
from repro.report.tables import format_table
from repro.util.matrices import _rng

from _common import run_once, write_result

P = 64
SHAPES = [
    ("1D tall", 8192, 16, 16),
    ("1D wide", 16, 16, 8192),
    ("2D", 1024, 1024, 16),
    ("3D cube", 256, 256, 256),
]


def run_experiment():
    rows = []
    for label, m, n, k in SHAPES:
        mach = BSPMachine(P)
        r = _rng(1)
        a = r.standard_normal((m, n))
        b = r.standard_normal((n, k))
        carma_matmul(mach, mach.world, a, b)
        rep = mach.cost()
        pred = carma_cost(m, n, k, P)
        rows.append([label, f"{m}x{n}x{k}", rep.W, pred.W, rep.W / pred.W, rep.S])
    # Memory-constrained run (3D shape).
    m = n = k = 256
    mach_free = BSPMachine(P)
    r = _rng(1)
    a = r.standard_normal((m, n))
    b = r.standard_normal((n, k))
    carma_matmul(mach_free, mach_free.world, a, b)
    budget = (m * n + n * k + m * k) / P * 1.2
    mach_tight = BSPMachine(P)
    carma_matmul(mach_tight, mach_tight.world, a, b, memory_words=budget)
    return rows, mach_free.cost(), mach_tight.cost()


def test_matmul_regimes(benchmark):
    rows, free, tight = run_once(benchmark, run_experiment)
    table = format_table(
        ["regime", "shape", "W measured", "W predicted", "ratio", "S"],
        rows,
        title=f"Lemma III.2 regimes (p={P})",
    )
    mem_table = format_table(
        ["memory", "W", "S", "peak M"],
        [
            ["unbounded", free.W, free.S, free.M],
            ["1.2x inputs", tight.W, tight.S, tight.M],
        ],
        title="memory/communication trade-off (v parameter)",
    )
    write_result("lemma_III2_matmul", table + "\n\n" + mem_table)

    # Every regime within a constant factor of the bound.
    for label, shape, w, wp, ratio, s in rows:
        assert ratio < 8.0, f"{label}: measured/predicted W = {ratio}"
        assert s <= 40 * math.log2(P)
    # The 3D shape must be communication-cheaper than its 2D embedding:
    # (mnk/p)^{2/3} < sizes/sqrt(p) territory.
    w_3d = rows[3][2]
    pred_2d_style = 3 * 256 * 256 / math.sqrt(P)
    assert w_3d < 4 * pred_2d_style
    # Memory pressure strictly inflates communication (DFS steps).
    assert tight.W > free.W
    assert tight.M <= free.M
    benchmark.extra_info["tight_over_free_W"] = tight.W / free.W
