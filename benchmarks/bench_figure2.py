"""Figure 2 — concurrent QR factorizations and updates of Algorithm IV.2.

Reproduces the paper's diagram of pipeline phases 5 and 6 for k = 2 and
asserts the exact concurrency sets the caption states:
{(3,1), (2,3), (1,5)} and {(3,2), (2,4), (1,6)}.
"""

from repro.eig.schedule import pipeline_schedule, schedule_checks
from repro.report.figures import render_figure2

from _common import run_once, write_result

N, B, K = 48, 8, 2


def run_experiment():
    sched = {p.phase: p for p in pipeline_schedule(N, B, B // K)}
    fig = render_figure2(n=N, b=B, k=K, phases=(5, 6))
    checks = schedule_checks(N, B, B // K)
    return sched, fig, checks


def test_figure2(benchmark):
    sched, fig, checks = run_once(benchmark, run_experiment)
    write_result("figure2", fig)

    assert sched[5].ij_set == {(3, 1), (2, 3), (1, 5)}
    assert sched[6].ij_set == {(3, 2), (2, 4), (1, 6)}
    assert checks["phases_disjoint"]
    assert checks["bulge_handoff"]
    benchmark.extra_info["phase5"] = sorted(sched[5].ij_set)
    benchmark.extra_info["phase6"] = sorted(sched[6].ij_set)
