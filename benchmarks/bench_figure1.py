"""Figure 1 — the matrices of Algorithm IV.1 at two successive steps.

Reproduces the structure diagram and cross-checks it against an *actual
instrumented run*: the traced QR panels of ``full_to_band_2p5d`` must have
exactly the shapes the figure depicts (an (n − s·b) × b sub-diagonal panel
at step s, shrinking by b rows per step, with the U/V aggregates growing by
b columns).
"""

import numpy as np

from repro.bsp import BSPMachine
from repro.dist.grid import ProcGrid
from repro.eig.full_to_band import full_to_band_2p5d
from repro.report.figures import render_figure1
from repro.util.matrices import random_symmetric

from _common import run_once, write_result

N, B = 96, 16


def run_experiment():
    mach = BSPMachine(4, trace=True)
    grid = ProcGrid(mach, (2, 2, 1))
    a = random_symmetric(N, seed=0)
    out = full_to_band_2p5d(mach, grid, a, B)
    qr_events = [e for e in mach.trace.events if e.kind == "rect_qr" or e.tag.startswith("f2b:qr@")]
    # Panel offsets recorded in the tags.
    offsets = sorted(
        {int(e.tag.split("@")[1].split(":")[0]) for e in mach.trace.events if "f2b:qr@" in e.tag}
    )
    return out, offsets, a


def test_figure1(benchmark):
    out, offsets, a = run_once(benchmark, run_experiment)
    fig = render_figure1(n_panels=N // B, step=3)
    write_result("figure1", fig)

    # The instrumented run factors one panel per b columns, exactly the
    # sequence the figure depicts.
    assert offsets == [B * s for s in range(N // B - 1)]
    # And the output really is banded with A's spectrum (the figure's "#").
    ref = np.linalg.eigvalsh(a)
    got = np.linalg.eigvalsh(out)
    assert np.abs(ref - got).max() < 1e-9 * max(1, np.abs(ref).max())
    benchmark.extra_info["panels"] = len(offsets)
