"""Table I — measured W / Q / S of all four eigensolvers.

The paper's Table I states asymptotic costs.  We measure them on the
simulated machine and assert the table's *shape*:

* the three 2-D algorithms' W scales like p^{-1/2±0.2} (rows 1–3 share the
  n²/√p column);
* ScaLAPACK's Q is an order of magnitude above everyone else's (the n³/p
  column — its per-column trailing mat-vecs);
* ScaLAPACK's and ELPA's S grows with n (the n·log p column) while the
  2.5D solver's S is n-independent (p^δ log² p);
* the 2.5D solver at δ = 2/3 moves fewer words than itself at δ = 1/2
  (the p^δ column: the √c replication win at fixed p), and the gap widens
  with p.

Absolute constants are implementation-specific and not asserted; at
simulation-feasible n, ScaLAPACK's tiny constants keep its raw W lowest
even though it loses asymptotically — the exponent fits and the Q/S columns
are where its costs blow up, exactly as the paper argues.
"""

from repro.bsp import BSPMachine
from repro.eig import (
    eigensolve_2p5d,
    eigensolve_ca_sbr,
    eigensolve_elpa_like,
    eigensolve_scalapack_like,
)
from repro.model.table1 import render_table1
from repro.report.tables import fit_exponent, format_table
from repro.util.matrices import random_symmetric

from repro.report.svg import line_chart, save_svg

from _common import RESULTS_DIR, run_once, write_result

N = 320
P_SWEEP = (16, 64, 256)
P_N_CHECK = 64  # rank count used for the n-scaling (S column) comparison


def run_experiment():
    a = random_symmetric(N, seed=0)
    a_small = random_symmetric(N // 2, seed=0)

    def measure(fn, p, mat):
        mach = BSPMachine(p)
        fn(mach, mat)
        return mach.cost()

    data = {}
    for name, fn in [
        ("ScaLAPACK", eigensolve_scalapack_like),
        ("ELPA", lambda mach, mat: eigensolve_elpa_like(mach, mat, b=16)),
        ("CA-SBR", eigensolve_ca_sbr),
    ]:
        data[name] = {p: measure(fn, p, a) for p in P_SWEEP}
        data[name]["half_n"] = measure(fn, P_N_CHECK, a_small)
    for delta, name in [(0.5, "IV.4 (d=1/2)"), (2.0 / 3.0, "IV.4 (d=2/3)")]:
        data[name] = {
            p: eigensolve_2p5d(BSPMachine(p), a, delta=delta).cost for p in P_SWEEP
        }
        data[name]["half_n"] = eigensolve_2p5d(
            BSPMachine(P_N_CHECK), a_small, delta=delta
        ).cost
    return data


def test_table1(benchmark):
    data = run_once(benchmark, run_experiment)
    rows = []
    for name, per_p in data.items():
        for p in P_SWEEP:
            rep = per_p[p]
            rows.append([name, p, rep.W, rep.Q, rep.S])
    table = format_table(
        ["algorithm", "p", "W", "Q", "S"], rows, title=f"Table I (measured, n={N})"
    )
    exps = {
        name: fit_exponent(P_SWEEP, [per_p[p].W for p in P_SWEEP])
        for name, per_p in data.items()
    }
    exp_rows = [[k, v] for k, v in exps.items()]
    write_result(
        "table1",
        render_table1()
        + "\n\n"
        + table
        + "\n\n"
        + format_table(["algorithm", "fitted W ~ p^e"], exp_rows),
    )
    benchmark.extra_info.update({f"W_exp[{k}]": round(v, 3) for k, v in exps.items()})
    save_svg(
        RESULTS_DIR / "table1_scaling.svg",
        line_chart(
            {name: [(p, per_p[p].W) for p in P_SWEEP] for name, per_p in data.items()},
            title=f"Table I: measured W vs p (n={N}, log-log)",
            xlabel="p", ylabel="W (words per rank)",
        ),
    )

    p_hi = P_SWEEP[-1]

    # 2-D family: W ~ p^{-1/2}.
    for name in ("ScaLAPACK", "ELPA"):
        assert -0.9 < exps[name] < -0.3, f"{name}: {exps[name]}"

    # Q column: ScaLAPACK's trailing mat-vecs give Q = n³/p — decaying like
    # 1/p — while every banded method's Q decays like ~p^{-1/2}; in the
    # n >> p regime the paper targets, the direct method therefore pays far
    # more vertical traffic.
    q_exps = {
        name: fit_exponent(P_SWEEP, [per_p[p].Q for p in P_SWEEP])
        for name, per_p in data.items()
    }
    assert q_exps["ScaLAPACK"] < -0.85, q_exps
    for name in ("ELPA", "CA-SBR", "IV.4 (d=2/3)"):
        assert q_exps[name] > q_exps["ScaLAPACK"] + 0.2, q_exps
    assert data["ScaLAPACK"][P_SWEEP[0]].Q > 1.5 * data["IV.4 (d=2/3)"][P_SWEEP[0]].Q

    # S column: the direct and two-stage methods synchronize per column
    # (S grows with n); the 2.5D solver's S is n-independent.
    for name in ("ScaLAPACK", "ELPA"):
        assert data[name][P_N_CHECK].S > 1.5 * data[name]["half_n"].S
    s_full = data["IV.4 (d=2/3)"][P_N_CHECK].S
    s_half = data["IV.4 (d=2/3)"]["half_n"].S
    assert s_full < 1.5 * s_half, "2.5D S must not scale with n"

    # W column: replication (δ = 2/3 vs 1/2) reduces W at fixed p, and the
    # advantage grows with p (the √c = p^{δ-1/2} trend).
    ratios = [data["IV.4 (d=1/2)"][p].W / data["IV.4 (d=2/3)"][p].W for p in P_SWEEP]
    assert ratios[-1] > 1.0, f"replication must pay off at p={p_hi}: {ratios}"
    assert ratios[-1] >= ratios[0] - 0.05, f"advantage must grow with p: {ratios}"
