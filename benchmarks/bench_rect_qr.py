"""Theorem III.6 — rect-QR across aspect ratios.

Sweeps m/n from square-ish to extremely tall-skinny at fixed p, comparing
measured W against the theorem's  m^δ n^{2−δ}/p^δ + mn/p  and checking the
regime hand-off: for tall matrices the mn/p (TSQR) term dominates; toward
square shapes the m^δ n^{2−δ}/p^δ (base-case) term takes over.
"""

import numpy as np

from repro.bsp import BSPMachine
from repro.blocks.rect_qr import rect_qr
from repro.model.costs import rect_qr_cost
from repro.report.tables import format_table
from repro.util.matrices import _rng

from _common import run_once, write_result

P = 16
CASES = [(8192, 8), (4096, 16), (1024, 32), (256, 64), (128, 128)]


def run_experiment():
    rows = []
    resids = []
    for m, n in CASES:
        mach = BSPMachine(P)
        a = _rng(3).standard_normal((m, n))
        u, t, r = rect_qr(mach, mach.world, a)
        q_thin = np.eye(m, n) - u @ (t @ u[:n, :].T)
        resid = np.abs(q_thin @ r - a).max()
        resids.append(resid)
        rep = mach.cost()
        pred = rect_qr_cost(m, n, P)
        rows.append([f"{m}x{n}", m / n, rep.W, pred.W, rep.W / pred.W, rep.S, rep.F])
    return rows, resids


def test_rect_qr(benchmark):
    rows, resids = run_once(benchmark, run_experiment)
    table = format_table(
        ["shape", "m/n", "W measured", "W predicted", "ratio", "S", "F"],
        rows,
        title=f"Theorem III.6 rect-QR (p={P})",
    )
    write_result("thm_III6_rect_qr", table)

    # Numerically exact factorizations at every shape.
    assert max(resids) < 1e-8
    # Measured within constants+logs of the bound everywhere.
    for row in rows:
        assert row[4] < 30.0, f"{row[0]}: W ratio {row[4]}"
    # Work efficiency: F ≈ 2mn²/p within constants, across the sweep.
    for (m, n), row in zip(CASES, rows):
        assert row[6] < 25 * 2 * m * n * n / P
    benchmark.extra_info["worst_ratio"] = max(r[4] for r in rows)
