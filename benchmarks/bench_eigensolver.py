"""Theorem IV.4 — the complete 2.5D eigensolver.

Strong-scaling sweep of the full pipeline at δ = 1/2 vs δ = 2/3, asserting:

* spectra stay correct at every point (the reduction chain is exact),
* W decreases with p for both settings,
* the replicated setting's S is larger (the paper's trade: √c more
  synchronization for √c less bandwidth),
* work efficiency: max-rank F stays within constants of 2n³/p.
"""

import numpy as np

from repro.bsp import BSPMachine
from repro.eig import eigensolve_2p5d
from repro.report.tables import fit_exponent, format_table
from repro.util.matrices import random_symmetric

from _common import run_once, write_result

N = 384
P_SWEEP = (16, 64, 256)


def run_experiment():
    a = random_symmetric(N, seed=5)
    ref = np.linalg.eigvalsh(a)
    rows = []
    data = {}
    for delta in (0.5, 2.0 / 3.0):
        for p in P_SWEEP:
            res = eigensolve_2p5d(BSPMachine(p), a, delta=delta)
            err = np.abs(res.eigenvalues - ref).max()
            rows.append(
                [delta, p, res.replication, res.cost.W, res.cost.S, res.cost.F, err]
            )
            data[(delta, p)] = res.cost
    return rows, data


def test_eigensolver_scaling(benchmark):
    rows, data = run_once(benchmark, run_experiment)
    table = format_table(
        ["delta", "p", "c", "W", "S", "F (max rank)", "|eig err|"],
        rows,
        title=f"Theorem IV.4 strong scaling (n={N})",
    )
    write_result("thm_IV4_eigensolver", table)

    # Exact spectra everywhere.
    assert max(r[6] for r in rows) < 1e-7

    for delta in (0.5, 2.0 / 3.0):
        ws = [data[(delta, p)].W for p in P_SWEEP]
        exp = fit_exponent(P_SWEEP, ws)
        assert exp < -0.15, f"W must decrease with p at delta={delta}: {exp}"
    # The replicated pipeline synchronizes more at equal p (trading α for β).
    for p in P_SWEEP[1:]:
        assert data[(2.0 / 3.0, p)].S > data[(0.5, p)].S
    # Work efficiency within constants (the O(n²)-flop bisection finish and
    # stage paddings account for the slack at this n).
    for p in P_SWEEP:
        assert data[(0.5, p)].F < 120 * 2 * N**3 / p + 400 * N * N
    benchmark.extra_info["W_exp_d12"] = fit_exponent(
        P_SWEEP, [data[(0.5, p)].W for p in P_SWEEP]
    )
    benchmark.extra_info["W_exp_d23"] = fit_exponent(
        P_SWEEP, [data[(2.0 / 3.0, p)].W for p in P_SWEEP]
    )
