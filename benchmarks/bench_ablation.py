"""Ablations over the design parameters Section V calls out.

* ``w`` (Algorithm III.1's pipeline depth): more supersteps for a smaller
  working set — S grows ~linearly in w, the peak temporary memory shrinks.
* ``qmax`` (Theorem III.6's base-case rank cap): capping the square-QR base
  cases trades base-case bandwidth against synchronization; the theorem's
  default must not be grossly beaten by either extreme.
* ``k = p^{2−3δ}`` single-stage band reduction (the §V suggestion "to reduce
  the number of band-reduction stages ... use k = p^{2−3δ} ... but this
  results in a greater synchronization cost" — per-stage, larger k does
  fewer stages overall at more supersteps per stage).
"""

import numpy as np

from repro.bsp import BSPMachine
from repro.blocks.rect_qr import rect_qr
from repro.blocks.streaming import streaming_matmul
from repro.dist.banded import DistBandMatrix
from repro.dist.grid import ProcGrid
from repro.eig.band_to_band import band_to_band_2p5d
from repro.report.tables import format_table
from repro.util.matrices import _rng, random_banded_symmetric

from _common import run_once, write_result


def sweep_w():
    rows = []
    r = _rng(9)
    a = r.standard_normal((256, 256))
    b = r.standard_normal((256, 32))
    for w in (1, 2, 4, 8):
        mach = BSPMachine(16)
        grid = ProcGrid(mach, (2, 2, 4))
        streaming_matmul(mach, grid, a, b, w=w, a_key="A")
        rep = mach.cost()
        rows.append([w, rep.W, rep.S, rep.M])
    return rows


def sweep_qmax():
    rows = []
    a = _rng(10).standard_normal((512, 32))
    for qmax in (1, 4, 16, None):
        mach = BSPMachine(16)
        u, t, r = rect_qr(mach, mach.world, a, qmax=qmax)
        rep = mach.cost()
        resid = np.abs((np.eye(512, 32) - u @ (t @ u[:32, :].T)) @ r - a).max()
        rows.append([qmax if qmax else "default", rep.W, rep.S, f"{resid:.1e}"])
    return rows


def sweep_k():
    rows = []
    a = random_banded_symmetric(384, 32, seed=11)
    for k, label in [(2, "k=2 (default)"), (4, "k=4"), (8, "k=8 (one shot)")]:
        mach = BSPMachine(48)
        band = DistBandMatrix(mach, a.copy(), 32, mach.world)
        out = band_to_band_2p5d(mach, band, k=k)
        rep = mach.cost()
        err = np.abs(np.linalg.eigvalsh(a) - np.linalg.eigvalsh(out.data)).max()
        rows.append([label, out.b, rep.W, rep.S, f"{err:.1e}"])
    return rows


def sweep_base_case():
    """2-D vs 2.5D square-QR base case (DESIGN.md §7 follow-up): the
    replicated variant's streaming term shrinks with p^delta but its
    replication overhead only pays off beyond the base-case sizes the
    eigensolvers generate — measured here so the default (2-D) is justified."""
    from repro.blocks.square_qr import square_qr
    from repro.blocks.square_qr_25d import square_qr_25d

    rows = []
    a = _rng(12).standard_normal((384, 384))
    for label, fn in [("2D base", square_qr), ("2.5D base", lambda m, g, x: square_qr_25d(m, g, x, delta=2 / 3))]:
        mach = BSPMachine(64)
        fn(mach, mach.world, a.copy())
        rep = mach.cost()
        rows.append([label, rep.W, rep.S, rep.M])
    return rows


def run_experiment():
    return sweep_w(), sweep_qmax(), sweep_k(), sweep_base_case()


def test_ablations(benchmark):
    w_rows, q_rows, k_rows, base_rows = run_once(benchmark, run_experiment)
    text = "\n\n".join(
        [
            format_table(["w", "W", "S", "peak M"], w_rows,
                         title="Algorithm III.1 pipeline depth w (p=16, c=4)"),
            format_table(["qmax", "W", "S", "resid"], q_rows,
                         title="Theorem III.6 base-case cap qmax (512x32, p=16)"),
            format_table(["strategy", "final b", "W", "S", "eig err"], k_rows,
                         title="band-to-band k (n=384, b=32, p=48)"),
            format_table(["base case", "W", "S", "peak M"], base_rows,
                         title="rect-QR base case: 2D vs 2.5D square QR (384x384, p=64)"),
        ]
    )
    write_result("ablations", text)

    # w: supersteps grow with w; W stays flat (same volume, more rounds).
    assert w_rows[-1][2] > w_rows[0][2]
    assert w_rows[-1][1] < 1.5 * w_rows[0][1]
    # qmax: all settings factor exactly; the default is never the worst in
    # BSP time terms (it balances the extremes).
    for row in q_rows:
        assert float(row[3]) < 1e-7
    # k: larger k reaches a thinner band in one stage with eigenvalues
    # preserved, and the per-stage supersteps do not collapse (the cost the
    # paper warns about).
    assert k_rows[-1][1] < k_rows[0][1]
    for row in k_rows:
        assert float(row[4]) < 1e-7
    # Base cases: both within 2x of each other in W (parity at this size —
    # the reason the 2-D base stays the default), 2.5D uses more memory.
    assert base_rows[1][1] < 2.0 * base_rows[0][1]
    assert base_rows[0][1] < 2.0 * base_rows[1][1]
    assert base_rows[1][3] > base_rows[0][3]
    benchmark.extra_info["w_S"] = [r[2] for r in w_rows]
