"""Back-transformation cost vs. number of reduction stages (Section IV end).

"A disadvantage of this multi-stage approach arises when eigenvectors are
required ... the cost of the back-transformations scales linearly with the
number of band-reduction stages (each stage requires O(n²) memory and O(n³)
computation)."

Using the sequential eigendecomposition extension, we vary the initial
band-width (hence the number of halving stages) and measure the accumulated
transform flops: the per-stage figures must all be Θ(n³)-class, so the total
grows with the stage count — quantifying the eigenvalue/eigenvector
asymmetry that motivates the paper to defer eigenvectors to future work.
"""

import numpy as np

from repro.linalg.eigvec import symmetric_eig
from repro.report.tables import format_table
from repro.util.matrices import random_symmetric

from _common import run_once, write_result

N = 96


def run_experiment():
    a = random_symmetric(N, seed=12)
    ref = np.linalg.eigvalsh(a)
    rows = []
    for b in (4, 8, 16, 32):  # ascending: more halving stages per run
        dec = symmetric_eig(a, b=b)
        err = np.abs(dec.eigenvalues - ref).max()
        rows.append(
            [b, dec.n_stages, sum(dec.flops_per_stage), min(dec.flops_per_stage),
             max(dec.flops_per_stage), f"{err:.1e}"]
        )
    return rows


def test_backtransform(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = format_table(
        ["b0", "stages", "total transform F", "min stage F", "max stage F", "eig err"],
        rows,
        title=f"back-transformation cost vs stage count (n={N})",
    )
    write_result("backtransform", table)

    # More stages, more accumulated-transform work (roughly linear).
    stages = [r[1] for r in rows]
    totals = [r[2] for r in rows]
    assert stages == sorted(stages)
    assert totals == sorted(totals), "transform work must grow with stages"
    # Every stage is Θ(n³)-class: min stage within 100x of n³/8.
    for r in rows:
        assert r[3] > N**3 / 8
    # Numerics stay exact regardless of the staging.
    assert all(float(r[5]) < 1e-8 for r in rows)
    benchmark.extra_info["totals"] = totals
