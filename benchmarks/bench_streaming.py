"""Lemma III.3 — streaming multiplication against a replicated operand.

Sweeps the replication factor c at fixed p and measures:

* W per rank ≈ (mk + nk)/p^δ — decreasing with c,
* the conditional Q term: with H above the replicated block size, repeated
  products against the same A cost no vertical traffic for A; below it,
  every pass re-reads A (the cache model produces this automatically),
* S ∝ w (the pipeline-depth parameter).
"""

import numpy as np

from repro.bsp import BSPMachine, MachineParams
from repro.blocks.streaming import streaming_matmul
from repro.dist.grid import ProcGrid
from repro.model.costs import c_to_delta, streaming_mm_cost
from repro.report.tables import format_table
from repro.util.matrices import _rng

from _common import run_once, write_result

P = 64
N, K = 512, 32
GRIDS = [(8, 8, 1), (4, 4, 4), (2, 2, 16)]


def run_experiment():
    r = _rng(2)
    a = r.standard_normal((N, N))
    b = r.standard_normal((N, K))
    rows = []
    for shape in GRIDS:
        mach = BSPMachine(P)
        grid = ProcGrid(mach, shape)
        streaming_matmul(mach, grid, a, b, a_key="A")
        rep = mach.cost()
        c = shape[2]
        delta = c_to_delta(P, c)
        pred = streaming_mm_cost(N, N, K, P, delta)
        rows.append([f"{shape}", c, rep.W, pred.W, rep.W / pred.W, rep.S])

    # Cache sweep: 10 repeated multiplications against the same A.
    cache_rows = []
    block_words = (N / 4) ** 2  # per-rank A block on the (4,4,4) grid
    for label, cache in [("H >> block", 8 * block_words), ("H << block", block_words / 16)]:
        mach = BSPMachine(P, MachineParams(cache_words=cache))
        grid = ProcGrid(mach, (4, 4, 4))
        for _ in range(10):
            streaming_matmul(mach, grid, a, b, a_key="A")
        cache_rows.append([label, cache, mach.cost().Q])
    return rows, cache_rows


def test_streaming(benchmark):
    rows, cache_rows = run_once(benchmark, run_experiment)
    table = format_table(
        ["grid", "c", "W measured", "W predicted", "ratio", "S"],
        rows,
        title=f"Lemma III.3 (p={P}, {N}x{N} replicated A times {N}x{K})",
    )
    cache_table = format_table(
        ["cache", "H (words)", "Q after 10 products"],
        cache_rows,
        title="conditional vertical term (A resident vs streamed)",
    )
    write_result("lemma_III3_streaming", table + "\n\n" + cache_table)

    ws = [row[2] for row in rows]
    assert ws[1] < ws[0], "c=4 must beat c=1"
    assert ws[2] < ws[1], "c=16 must beat c=4"
    # Within constants of the bound at every c.
    for row in rows:
        assert row[4] < 8.0, f"{row[0]}: ratio {row[4]}"
    # Cache condition: resident A cuts Q by a large factor over 10 passes.
    q_big, q_small = cache_rows[0][2], cache_rows[1][2]
    assert q_small > 2.5 * q_big
    benchmark.extra_info["W_c1_over_c16"] = ws[0] / ws[2]
