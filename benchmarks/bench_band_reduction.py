"""Lemmas IV.2 / IV.3 — the two band-reduction strategies.

Compares CA-SBR (each rank chases whole bulges; 1-D) against the 2.5D
band-to-band algorithm (a processor group per chase) across band-widths:

* for wide bands (b ≥ n/p) the 2.5D algorithm exploits intra-chase
  parallelism: its W stays below CA-SBR's as b grows;
* per-stage invariance (Theorem IV.4's design): halving b while shrinking
  the group by k^ζ keeps the per-stage W roughly constant;
* the k trade-off: one k=4 stage synchronizes less than two k=2 stages.
"""

import numpy as np

from repro.bsp import BSPMachine
from repro.dist.banded import DistBandMatrix
from repro.eig.band_to_band import band_to_band_2p5d
from repro.eig.ca_sbr import ca_sbr_halve
from repro.report.tables import format_table
from repro.util.matrices import random_banded_symmetric

from _common import run_once, write_result

N, P = 512, 64
BANDS = (16, 32, 64, 128)


def run_experiment():
    rows = []
    for b in BANDS:
        a = random_banded_symmetric(N, b, seed=b)
        m_sbr = BSPMachine(P)
        ca_sbr_halve(m_sbr, DistBandMatrix(m_sbr, a.copy(), b, m_sbr.world))
        m_b2b = BSPMachine(P)
        band_to_band_2p5d(m_b2b, DistBandMatrix(m_b2b, a.copy(), b, m_b2b.world), k=2)
        r_sbr, r_b2b = m_sbr.cost(), m_b2b.cost()
        rows.append([b, r_sbr.F, r_b2b.F, r_sbr.W, r_b2b.W, r_sbr.S, r_b2b.S])

    # k trade-off at b = 64.
    a = random_banded_symmetric(N, 64, seed=64)
    m_k4 = BSPMachine(P)
    band_to_band_2p5d(m_k4, DistBandMatrix(m_k4, a.copy(), 64, m_k4.world), k=4)
    m_2k2 = BSPMachine(P)
    band = DistBandMatrix(m_2k2, a.copy(), 64, m_2k2.world)
    band_to_band_2p5d(m_2k2, band_to_band_2p5d(m_2k2, band, k=2), k=2)
    return rows, m_k4.cost(), m_2k2.cost()


def test_band_reduction(benchmark):
    rows, k4, two_k2 = run_once(benchmark, run_experiment)
    table = format_table(
        ["b", "F CA-SBR", "F 2.5D b2b", "W CA-SBR", "W 2.5D b2b", "S CA-SBR", "S 2.5D b2b"],
        rows,
        title=f"Lemma IV.2 vs IV.3 (n={N}, p={P}, one halving)",
    )
    k_table = format_table(
        ["strategy", "W", "S"],
        [["one k=4 stage", k4.W, k4.S], ["two k=2 stages", two_k2.W, two_k2.S]],
        title="stage-count trade-off (b=64 -> 16)",
    )
    write_result("lemma_IV23_band_reduction", table + "\n\n" + k_table)

    # Algorithm IV.2's point ("designed to exploit additional parallelism
    # given larger starting band-widths"): CA-SBR executes each bulge chase
    # on ONE rank, so for b >> n/p its critical-path flops blow up; the 2.5D
    # variant spreads every QR/update over a group, keeping max-rank F lower
    # — at the price of more synchronization (Lemma IV.3's larger S).
    f_ratio_narrow = rows[0][1] / rows[0][2]
    f_ratio_wide = rows[-1][1] / rows[-1][2]
    assert f_ratio_wide > 1.5, f"2.5D must win max-rank F at wide bands: {f_ratio_wide}"
    assert f_ratio_wide > f_ratio_narrow, "the advantage must grow with b"
    assert rows[-1][6] > rows[-1][5], "the parallelism costs supersteps"
    # Both stay within a constant factor in W (same O(n^2/p-ish) volume).
    assert rows[-1][4] < 8 * rows[-1][3]
    # Fewer stages, fewer supersteps (the k trade-off of Section IV).
    assert k4.S < two_k2.S
    benchmark.extra_info["F_ratio_wide"] = f_ratio_wide
    benchmark.extra_info["F_ratio_narrow"] = f_ratio_narrow
