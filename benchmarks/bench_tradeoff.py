"""Section V — the (δ, c) tuning space: memory for bandwidth.

Sweeps δ across [1/2, 2/3] on the model *and* the measured full-to-band
stage, and checks that the tuner picks the δ a bandwidth-bound machine wants
(max replication) vs what a latency-bound machine wants (none), with the
measured W·M product tracking the lower-bound trade curve
W = Ω(n³/(p·√M)) ⇔ W·√M = Ω(n³/p).
"""

import numpy as np

from repro.bsp import BSPMachine, MachineParams
from repro.dist.grid import ProcGrid
from repro.eig.full_to_band import full_to_band_2p5d
from repro.model.bounds import memory_dependent_lower_bound
from repro.model.tuning import best_delta, tuning_table
from repro.report.tables import format_table
from repro.util.matrices import random_symmetric

from _common import run_once, write_result

N, B, P = 512, 64, 256
GRIDS = [(16, 16, 1), (8, 8, 4), (4, 4, 16)]


def run_experiment():
    a = random_symmetric(N, seed=6)
    measured = []
    for shape in GRIDS:
        mach = BSPMachine(P)
        full_to_band_2p5d(mach, ProcGrid(mach, shape), a, B)
        rep = mach.cost()
        lower = memory_dependent_lower_bound(N, P, max(rep.M, 1.0))
        measured.append([shape[2], rep.W, rep.M, lower, rep.W / lower])
    model_rows = [
        [r["delta"], r["c"], r["W"], r["memory_words"], r["time"]]
        for r in tuning_table(N, P, MachineParams())
    ]
    d_bw, _ = best_delta(8192, 4096, MachineParams(gamma=0, beta=1, nu=0, alpha=0))
    d_lat, _ = best_delta(8192, 4096, MachineParams(gamma=0, beta=0, nu=0, alpha=1))
    return measured, model_rows, d_bw, d_lat


def test_tradeoff(benchmark):
    measured, model_rows, d_bw, d_lat = run_once(benchmark, run_experiment)
    m_table = format_table(
        ["c", "W measured", "M measured", "W lower bound", "W/bound"],
        measured,
        title=f"measured memory/bandwidth trade (full-to-band, n={N}, p={P})",
    )
    mod_table = format_table(
        ["delta", "c", "W model", "M model", "time model"],
        model_rows,
        title="model tuning table",
    )
    write_result(
        "tradeoff",
        m_table + "\n\n" + mod_table + f"\n\nbandwidth-bound best delta: {d_bw:.3f}"
        f"\nlatency-bound best delta:   {d_lat:.3f}",
    )

    # Tuner picks the endpoints for the extreme machines.
    assert abs(d_bw - 2.0 / 3.0) < 1e-6
    assert abs(d_lat - 0.5) < 1e-6
    # Measured points sit above (but within constants of) the lower bound,
    # and more memory buys less communication.
    for c, w, m, lower, ratio in measured:
        assert ratio >= 1.0, "nobody beats the lower bound"
        assert ratio < 200.0
    assert measured[1][1] < measured[0][1]  # W drops c=1 -> 4
    assert measured[1][2] > measured[0][2]  # M grows
    benchmark.extra_info["ratios"] = [round(r[4], 1) for r in measured]
