"""Lemma IV.1 — 2.5D full-to-band: the √c communication win.

The paper's central mechanism.  At fixed p and n, sweeping the replication
factor c must (a) reduce W monotonically up to c ≈ p^{1/3}, (b) inflate the
per-rank memory footprint by ~c, and (c) show the U-shape beyond the
feasible range (replication traffic overtakes the savings — the reason the
paper restricts c ≤ p^{1/3}).  A small-cache run must pay the conditional
vertical term.
"""

import numpy as np

from repro.bsp import BSPMachine, MachineParams
from repro.dist.grid import ProcGrid
from repro.eig.full_to_band import full_to_band_2p5d
from repro.report.tables import format_table
from repro.util.matrices import random_symmetric
from repro.util.validation import matrix_bandwidth

from repro.report.svg import line_chart, save_svg

from _common import RESULTS_DIR, run_once, write_result

N, B = 768, 96
P = 256
GRIDS = [(16, 16, 1), (8, 8, 4), (4, 4, 16), (2, 2, 64)]


def run_experiment():
    a = random_symmetric(N, seed=4)
    rows = []
    outs = []
    for shape in GRIDS:
        mach = BSPMachine(P)
        grid = ProcGrid(mach, shape)
        out = full_to_band_2p5d(mach, grid, a, B)
        rep = mach.cost()
        rows.append([f"{shape}", shape[2], rep.W, rep.M, rep.S, rep.F])
        outs.append(out)
    # Cache sweep on the c=4 grid.
    q_rows = []
    for label, cache in [("large H", 1e12), ("small H", 1e3)]:
        mach = BSPMachine(P, MachineParams(cache_words=cache))
        grid = ProcGrid(mach, (8, 8, 4))
        full_to_band_2p5d(mach, grid, a, B)
        q_rows.append([label, mach.cost().Q])
    return a, rows, outs, q_rows


def test_full_to_band(benchmark):
    a, rows, outs, q_rows = run_once(benchmark, run_experiment)
    table = format_table(
        ["grid", "c", "W", "M (peak/rank)", "S", "F"],
        rows,
        title=f"Lemma IV.1: replication sweep (n={N}, b={B}, p={P})",
    )
    q_table = format_table(["cache", "Q"], q_rows, title="conditional vertical term")
    write_result("lemma_IV1_full_to_band", table + "\n\n" + q_table)

    ref = np.linalg.eigvalsh(a)
    for out in outs:
        assert matrix_bandwidth(out) <= B
        assert np.abs(np.linalg.eigvalsh(out) - ref).max() < 1e-8 * max(1, abs(ref).max())

    ws = [r[2] for r in rows]
    ms = [r[3] for r in rows]
    # (a) W decreases with c through the feasible range (c <= p^(1/3) ~ 6.3).
    assert ws[1] < ws[0], f"c=4 must beat c=1: {ws}"
    # (b) memory grows with replication.
    assert ms[1] > 2 * ms[0]
    assert ms[2] > 2 * ms[1]
    # (c) far beyond the feasible c the benefit is gone or reversed
    # (replication traffic ~ c·n²/p dominates): c=64 must not keep winning
    # at the sqrt rate.
    ideal_gain = np.sqrt(64)
    actual_gain = ws[0] / ws[3]
    assert actual_gain < 0.6 * ideal_gain, "the c <= p^{1/3} constraint must bite"
    save_svg(
        RESULTS_DIR / "full_to_band_c_sweep.svg",
        line_chart(
            {"measured W": [(r[1], r[2]) for r in rows],
             "ideal W(c=1)/sqrt(c)": [(r[1], rows[0][2] / np.sqrt(r[1])) for r in rows]},
            title=f"Lemma IV.1: W vs replication c (n={N}, p={P})",
            xlabel="c", ylabel="W (words per rank)",
        ),
    )
    benchmark.extra_info["gain_c4"] = ws[0] / ws[1]
    benchmark.extra_info["gain_c16"] = ws[0] / ws[2]
    benchmark.extra_info["gain_c64"] = ws[0] / ws[3]
    # Cache condition: the small-H surplus matches the conditional term
    # O(ν·(n/b)·n²/q²) of Lemma IV.1 (q = 8 on the (8,8,4) grid).
    extra_q = q_rows[1][1] - q_rows[0][1]
    predicted = (N / B) * N * N / 8**2
    assert extra_q > 0.4 * predicted, (extra_q, predicted)
