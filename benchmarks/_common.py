"""Shared infrastructure for the benchmark harness.

Every benchmark (one per table/figure of the paper, plus one per cost lemma)
runs its experiment once under ``benchmark.pedantic``, writes the resulting
table to ``benchmarks/results/<name>.txt``, records headline numbers in
``benchmark.extra_info``, and asserts the paper's *shape* claims (scaling
exponents, who wins, crossovers) — absolute constants are implementation-
specific and are not asserted.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> pathlib.Path:
    """Persist a benchmark's output table; also echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
    return path


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
