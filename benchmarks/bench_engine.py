"""Accounting-engine wall-clock benchmark (the ``repro bench`` micro-suite).

Unlike the other benchmarks, this one measures the *simulator itself*: the
vectorized ``array`` counter store versus the pre-vectorization ``scalar``
oracle on the pinned micro-suite from :mod:`repro.bench`.  It asserts the
two invariants the vectorization PR rests on:

* **oracle identity** — both engines produce bit-identical per-rank cost
  reports on every case (enforced inside :func:`repro.bench.run_suite`);
* **speedup floor** — the vectorized engine is at least 3× faster than the
  scalar oracle on machine-level charging at p ≥ 256.

Results go to ``benchmarks/results/BENCH_engine.json`` (the same document
``repro bench`` writes) plus a rendered table alongside the other
benchmark outputs.
"""

import json

from repro import bench

from _common import RESULTS_DIR, run_once, write_result


def test_engine(benchmark):
    results = run_once(benchmark, lambda: bench.run_suite(repeats=3, log=lambda _msg: None))
    write_result("engine", bench.render_results(results))
    bench.write_results(results, RESULTS_DIR / "BENCH_engine.json")

    charging = results["cases"]["charging_p512"]
    eig = results["cases"]["eig_n96_p16"]
    benchmark.extra_info["charging_speedup"] = charging["speedup_vs_scalar"]
    benchmark.extra_info["charging_rank_charges_per_s"] = charging["rank_charges_per_s"]
    benchmark.extra_info["eig_speedup"] = eig["speedup_vs_scalar"]

    # The vectorized engine must hold its speedup floor over the scalar
    # oracle on pure charging work at p = 512.
    assert charging["speedup_vs_scalar"] >= bench.SPEEDUP_FLOOR, (
        f"charging speedup {charging['speedup_vs_scalar']:.2f}x fell below "
        f"the {bench.SPEEDUP_FLOOR:.0f}x floor"
    )
    # The full eig pipeline (numerics-dominated) must at minimum not get
    # slower from the vectorized accounting.
    assert eig["speedup_vs_scalar"] > 0.9

    # The JSON document round-trips and self-checks against itself.
    doc = json.loads((RESULTS_DIR / "BENCH_engine.json").read_text())
    assert bench.check_against_baseline(doc, doc) == []
